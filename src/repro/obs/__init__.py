"""Fleet-wide telemetry plane: live progress, time-series, health.

The multiprocess fleet coordinator (ROADMAP item 1, PR 6) runs 50k-device
simulations across worker processes — and until now each worker was a
black box between launch and the merged report.  This package makes the
fleet observable *while it runs*, without ever perturbing it:

* :mod:`repro.obs.telemetry` — the per-shard sampler.  At every epoch
  barrier the worker reads its shard's kernel counters, heap depth,
  span-latency digests, energy totals and invariant status into one
  snapshot dict; wall-clock facts (worker CPU, RSS, barrier stall) ride
  in a clearly segregated ``wall`` section.  Disabled, it is a
  ``__class__``-swapped null lane like the spans and metrics planes.
* :mod:`repro.obs.timeline` — the coordinator-side aggregator: per-shard
  snapshots become a canonical time-series with byte-deterministic JSONL
  export (wall fields stripped in deterministic mode), additive
  aggregate totals that must match the solo run, and a fleet health
  verdict (slow shards, barrier imbalance, stall accounting).
* :mod:`repro.obs.prometheus` — text-exposition rendering of a snapshot
  or a finished timeline, for scraping or one-shot export.
* :mod:`repro.obs.live` — the ``repro top`` progress view, refreshed at
  each barrier: sim-time, events/s, per-shard lag bars, handoff backlog.

Telemetry is out-of-band and keyed to simulated time: sampling only
*reads* simulation state, every deterministic field is a function of the
seed, and the solo and partitioned runs of the same fleet agree on all
aggregate totals.
"""

from .prometheus import snapshot_to_prometheus, timeline_to_prometheus
from .telemetry import NullShardTelemetry, ShardTelemetry
from .timeline import (
    FleetTimeline,
    aggregate_totals,
    fleet_health,
    read_timeline,
    render_health,
    timeline_to_jsonl,
)

__all__ = [
    "FleetTimeline",
    "NullShardTelemetry",
    "ShardTelemetry",
    "aggregate_totals",
    "fleet_health",
    "read_timeline",
    "render_health",
    "snapshot_to_prometheus",
    "timeline_to_jsonl",
]
