"""Prometheus text-exposition rendering of telemetry snapshots.

GSN-style federated deployments scrape their middlewares; we render the
same counters the timeline carries in the exposition format
(https://prometheus.io/docs/instrumenting/exposition_formats/) so a
scrape target, a pushgateway, or a human with ``grep`` can read one
snapshot of the fleet.  Rendering is deterministic — names sorted,
labels sorted, values formatted with ``repr``-stable rules — so two
same-seed runs export byte-identical files *except* the ``worker_*``
wall-clock gauges (CPU, RSS, stall), which report real machine state
by design; CI strips those lines before comparing.

Two entry points:

* :func:`snapshot_to_prometheus` — one shard/simulation metrics
  snapshot (the :meth:`MetricsRegistry.snapshot` shape: scalars and
  histogram dicts) under a fixed label set.
* :func:`timeline_to_prometheus` — the final frame of a fleet timeline:
  per-shard series labelled ``{shard="..."}`` plus the fleet-total
  series with no shard label.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional

#: Every exported name is prefixed so scrapes cannot collide with other
#: jobs on the same gateway.
PREFIX = "pogo_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A valid exposition metric name: prefixed, punctuation folded."""
    folded = _NAME_RE.sub("_", name)
    if folded and folded[0].isdigit():
        folded = "_" + folded
    return PREFIX + folded


def _label_text(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(labels[key])}"' for key in sorted(labels)
    )
    return "{" + body + "}"


def _value_text(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value is None:
        return "NaN"
    return repr(float(value))


def render_metric(
    name: str,
    value: Any,
    labels: Optional[Mapping[str, str]] = None,
    kind: str = "gauge",
    lines: Optional[List[str]] = None,
    typed: Optional[set] = None,
) -> List[str]:
    """Append one sample (with its ``# TYPE`` header, once per name)."""
    if lines is None:
        lines = []
    full = metric_name(name)
    if typed is not None and full not in typed:
        typed.add(full)
        lines.append(f"# TYPE {full} {kind}")
    lines.append(f"{full}{_label_text(labels)} {_value_text(value)}")
    return lines


def snapshot_to_prometheus(
    snapshot: Dict[str, Any], labels: Optional[Mapping[str, str]] = None
) -> str:
    """Render a metrics snapshot (scalars + histogram dicts) as text.

    Histogram dicts (the registry's count/sum/min/max/mean shape) become
    ``_count``/``_sum`` series plus ``_min``/``_max`` gauges; scalars
    become counters when integral (the registry's counters and event
    gauges are monotone) and gauges otherwise.
    """
    lines: List[str] = []
    typed: set = set()
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):
            render_metric(f"{name}_count", value.get("count", 0), labels,
                          "counter", lines, typed)
            render_metric(f"{name}_sum", value.get("sum", 0.0), labels,
                          "counter", lines, typed)
            for bound in ("min", "max"):
                if value.get(bound) is not None:
                    render_metric(f"{name}_{bound}", value[bound], labels,
                                  "gauge", lines, typed)
        else:
            kind = "counter" if isinstance(value, int) else "gauge"
            render_metric(name, value, labels, kind, lines, typed)
    return "\n".join(lines) + "\n" if lines else ""


def timeline_to_prometheus(timeline) -> str:
    """Render a fleet timeline's final frame as text exposition.

    Per-shard series carry ``{shard="fleet/0"}`` labels; the additive
    fleet totals follow with no shard label.  Wall-clock sections are
    exported too (they are exactly what a scraper wants), as
    ``worker_*`` gauges.
    """
    samples = timeline.last_samples()
    lines: List[str] = []
    typed: set = set()
    for sample in samples:
        labels = {"shard": sample["shard"]}
        render_metric("events_executed", sample["kernel"]["events"], labels,
                      "counter", lines, typed)
        render_metric("kernel_pending_events", sample["kernel"]["pending"],
                      labels, "gauge", lines, typed)
        render_metric("energy_microjoules", sample["energy_uj"], labels,
                      "counter", lines, typed)
        render_metric("spans_recorded", sample["spans"]["recorded"], labels,
                      "counter", lines, typed)
        for name, value in sorted(sample["server"].items()):
            render_metric(name, value, labels, "counter", lines, typed)
        for name, value in sorted(sample["counters"].items()):
            render_metric(name, value, labels, "counter", lines, typed)
        for hop, digest in sorted(sample["hops"].items()):
            hop_labels = dict(labels, hop=hop)
            render_metric("hop_latency_ms_count", digest["count"], hop_labels,
                          "counter", lines, typed)
            render_metric("hop_latency_ms_sum", digest["sum_ms"], hop_labels,
                          "counter", lines, typed)
        wall = sample.get("wall") or {}
        for name, value in sorted(wall.items()):
            render_metric(f"worker_{name}", value, labels, "gauge",
                          lines, typed)
    if samples:
        totals = timeline.totals()
        render_metric("fleet_events_executed", totals["events"], None,
                      "counter", lines, typed)
        render_metric("fleet_energy_microjoules", totals["energy_uj"], None,
                      "counter", lines, typed)
        render_metric("fleet_spans_recorded", totals["spans_recorded"], None,
                      "counter", lines, typed)
        render_metric("fleet_sim_ms", totals["barrier_ms"], None,
                      "gauge", lines, typed)
        for name, value in sorted(totals["server"].items()):
            render_metric(f"fleet_{name}", value, None, "counter", lines, typed)
    return "\n".join(lines) + "\n" if lines else ""
