"""The ``repro top`` live progress view, refreshed at each epoch barrier.

The coordinator hands every appended timeline frame to an observer; this
module's :class:`LiveView` is the human-facing one.  It renders a small
dashboard — sim-time progress, aggregate events/s, per-shard lag bars
(window CPU relative to the busiest shard), handoff backlog — and
repaints it in place when the stream is a TTY (ANSI cursor-up) or emits
a periodic one-line summary otherwise, so redirected runs stay greppable
instead of unreadable.

The view writes to *stderr* by design: stdout stays reserved for the
deterministic reports, and a refresh throttle (default 10 Hz) keeps a
500-barrier run from melting the terminal.  Nothing here feeds back into
the simulation — the view only reads frames.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Dict, List, Optional

#: Minimum wall seconds between repaints (the final frame always paints).
REFRESH_S = 0.1
#: Width of the per-shard lag bar, in character cells.
BAR_WIDTH = 20


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _sim_clock(ms: float) -> str:
    seconds = int(ms // 1000)
    return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


class LiveView:
    """Barrier-by-barrier fleet progress on a terminal."""

    def __init__(
        self,
        total_ms: float,
        devices: int,
        shards: int,
        stream=None,
        refresh_s: float = REFRESH_S,
    ) -> None:
        self.total_ms = total_ms
        self.devices = devices
        self.shards = shards
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._painted_lines = 0
        # -inf: the first frame always paints regardless of the
        # machine's perf_counter epoch.
        self._last_paint = float("-inf")
        self._started = perf_counter()
        self._prev_cpu: Dict[str, float] = {}
        self.frames_seen = 0

    # ------------------------------------------------------------------
    def __call__(self, frame: Dict[str, Any]) -> None:
        """Observer hook: the coordinator calls this with every frame."""
        self.frames_seen += 1
        now = perf_counter()
        final = frame["barrier_ms"] >= self.total_ms
        if not final and now - self._last_paint < self.refresh_s:
            return
        self._last_paint = now
        self._paint(frame, now)

    # ------------------------------------------------------------------
    def _paint(self, frame: Dict[str, Any], now: float) -> None:
        samples = sorted(frame["samples"], key=lambda s: s["shard"])
        events = sum(s["kernel"]["events"] for s in samples)
        wall = max(now - self._started, 1e-9)
        fraction = min(1.0, frame["barrier_ms"] / self.total_ms)
        header = (
            f"repro top — {self.devices} devices / {self.shards} shard(s)   "
            f"sim {_sim_clock(frame['barrier_ms'])} / {_sim_clock(self.total_ms)} "
            f"({fraction * 100:3.0f}%)"
        )
        summary = (
            f"events {events:,} ({events / wall:,.0f} ev/s wall)   "
            f"barrier #{frame['epoch']:,}   handoffs +{frame['handoffs']:,} "
            f"(backlog {frame['backlog']:,})"
        )
        if not self._tty:
            print(f"{header}  |  {summary}", file=self.stream, flush=True)
            return
        # Per-shard lag bars: this window's CPU, relative to the busiest
        # shard — the full bar is the straggler every other worker waited
        # for at this barrier.
        deltas: List[tuple] = []
        for sample in samples:
            cpu = (sample.get("wall") or {}).get("cpu_s", 0.0)
            delta = cpu - self._prev_cpu.get(sample["shard"], 0.0)
            self._prev_cpu[sample["shard"]] = cpu
            deltas.append((sample, max(delta, 0.0)))
        busiest = max((delta for _, delta in deltas), default=0.0)
        lines = [header, summary]
        for sample, delta in deltas:
            share = delta / busiest if busiest > 0 else 0.0
            lines.append(
                f"  {sample['shard']:<12} [{_bar(share)}] "
                f"{delta * 1000:7.1f} ms cpu   "
                f"pending {sample['kernel']['pending']:>7,}   "
                f"out {sample['handoffs']['out']:>4,}"
            )
        if self._painted_lines:
            self.stream.write(f"\x1b[{self._painted_lines}F\x1b[J")
        self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self._painted_lines = len(lines)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Leave the last frame on screen and drop below it."""
        if self._tty and self._painted_lines:
            self.stream.flush()
        self._painted_lines = 0
