"""Shared-memory SPSC byte ring: the fleet's out-of-pipe data sink.

The worker pipe is the fleet's synchronization channel; it should carry
barrier control traffic, not bulk data.  This module provides the bulk
lane: a single-producer/single-consumer ring of length-prefixed records
in one ``multiprocessing.shared_memory`` segment per shard.  Workers
append telemetry samples during a window and stream their final
artifact blob through it in chunks; the coordinator drains at barriers.

Synchronization comes from the fleet protocol, not from locks: the
producer only writes between receiving a window grant and sending its
barrier reply, and the consumer only drains after receiving that reply.
The pipe message orders the two sides (its ``recv`` happens-after the
``send`` that followed the ring writes), so head and tail are plain
monotonically increasing ``u64`` cursors — consumer-owned and
producer-owned respectively — with no atomics needed.

Layout::

    [u64 head][u64 tail][capacity bytes of record data]

    record := u32 length + payload          (wraps byte-wise)

Cleanup is the coordinator's job: it creates the segment before
spawning the worker and unlinks it in a ``finally`` — including on the
:class:`~repro.fleet.worker.WorkerCrashed` path, so a dead worker never
leaks ``/dev/shm`` entries.  Workers attach read-write; their
``resource_tracker`` registration dedupes against the coordinator's in
the shared spawn tracker (see :meth:`ShmRing.attach`), which doubles as
a last-resort reaper should the coordinator itself die uncleanly.

``shm_available()`` probes the platform once; callers fall back to
shipping data inline over the pipe when it is false, so the fleet runs
unchanged on platforms without POSIX shared memory.
"""

from __future__ import annotations

import os
import struct
from typing import List, Optional

_HEADER = 16
_pack_u64_into = struct.Struct("<Q").pack_into
_unpack_u64 = struct.Struct("<Q").unpack_from
_pack_u32 = struct.Struct("<I").pack
_unpack_u32 = struct.Struct("<I").unpack_from

#: Default per-shard ring capacity.  Telemetry samples are ~1-4 KiB per
#: barrier; artifact chunks size themselves to fit whatever this is.
DEFAULT_RING_BYTES = 4 * 1024 * 1024


class ShmError(RuntimeError):
    """A ring that cannot be created, attached, or safely used."""


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed with a tiny segment)."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=16)
        try:
            probe.buf[0] = 1
        finally:
            probe.close()
            probe.unlink()
        return True
    except Exception:
        return False


class ShmRing:
    """One SPSC ring over a shared-memory segment.

    Create with :meth:`create` (owner side — responsible for
    ``unlink``), attach with :meth:`attach` (worker side).  ``try_push``
    returns ``False`` instead of blocking when the record does not fit;
    the caller decides whether to spill to the pipe or drain first.
    """

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._buf = shm.buf
        self.capacity = len(shm.buf) - _HEADER
        self.name = shm.name

    # -- lifecycle ----------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES,
               name: Optional[str] = None) -> "ShmRing":
        from multiprocessing import shared_memory

        if capacity <= 8:
            raise ShmError(f"ring capacity must exceed 8 bytes, got {capacity}")
        if name is None:
            name = f"pogo-{os.getpid()}-{os.urandom(4).hex()}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=_HEADER + capacity)
        except Exception as exc:
            raise ShmError(f"cannot create shared-memory ring: {exc}") from exc
        _pack_u64_into(shm.buf, 0, 0)
        _pack_u64_into(shm.buf, 8, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except Exception as exc:
            raise ShmError(f"cannot attach shared-memory ring {name!r}: {exc}") from exc
        # 3.11's SharedMemory registers with the resource tracker on
        # attach as well as create.  Fleet workers are spawn children of
        # the creator, so both registrations land in the *same* tracker
        # daemon and dedupe by name: the coordinator's unlink clears the
        # single entry, and if the coordinator dies hard the tracker
        # reaps the segment at shutdown instead of leaking /dev/shm.
        return cls(shm, owner=False)

    def close(self) -> None:
        """Release this mapping (both sides; idempotent)."""
        if self._buf is None:
            return
        self._buf = None
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent)."""
        self.close()
        if not self._owner:
            return
        self._owner = False
        try:
            self._shm.unlink()
        except Exception:
            pass

    # -- cursors ------------------------------------------------------

    @property
    def _head(self) -> int:
        return _unpack_u64(self._buf, 0)[0]

    @property
    def _tail(self) -> int:
        return _unpack_u64(self._buf, 8)[0]

    def __len__(self) -> int:
        """Unread bytes currently in the ring."""
        return self._tail - self._head

    # -- producer -----------------------------------------------------

    def try_push(self, payload: bytes) -> bool:
        """Append one record; ``False`` (and no write) if it won't fit."""
        if self._buf is None:
            raise ShmError("ring is closed")
        head, tail = self._head, self._tail
        need = 4 + len(payload)
        if need > self.capacity - (tail - head):
            return False
        self._write(tail, _pack_u32(len(payload)))
        self._write(tail + 4, payload)
        _pack_u64_into(self._buf, 8, tail + need)
        return True

    def _write(self, cursor: int, data: bytes) -> None:
        start = _HEADER + cursor % self.capacity
        first = min(len(data), _HEADER + self.capacity - start)
        self._buf[start:start + first] = data[:first]
        if first < len(data):
            self._buf[_HEADER:_HEADER + len(data) - first] = data[first:]

    # -- consumer -----------------------------------------------------

    def drain(self) -> List[bytes]:
        """Read and consume every complete record currently in the ring."""
        if self._buf is None:
            raise ShmError("ring is closed")
        head, tail = self._head, self._tail
        records: List[bytes] = []
        while head < tail:
            if tail - head < 4:
                raise ShmError("torn ring record (truncated length prefix)")
            (length,) = _unpack_u32(self._read(head, 4))
            if tail - head - 4 < length:
                raise ShmError(
                    f"torn ring record ({length} byte payload, "
                    f"{tail - head - 4} available)"
                )
            records.append(bytes(self._read(head + 4, length)))
            head += 4 + length
        _pack_u64_into(self._buf, 0, head)
        return records

    def _read(self, cursor: int, length: int) -> bytes:
        start = _HEADER + cursor % self.capacity
        first = min(length, _HEADER + self.capacity - start)
        data = bytes(self._buf[start:start + first])
        if first < length:
            data += bytes(self._buf[_HEADER:_HEADER + length - first])
        return data
