"""The fleet timeline: per-shard snapshots → canonical time-series.

The coordinator appends one *frame* per epoch barrier: every shard's
telemetry sample for the window just closed, plus the barrier-level
facts only the coordinator knows (handoffs exchanged, remaining backlog,
window wall time).  The timeline then answers four questions:

* **What happened, when?**  :func:`timeline_to_jsonl` renders the whole
  run as JSON Lines — one ``sample`` line per (barrier, shard), one
  ``barrier`` line per window, one closing ``totals`` line.  In
  deterministic mode (the default) every wall-clock field is stripped
  and the remaining stream is a pure function of the seed: two same-seed
  runs export byte-identical files, and CI ``cmp``s them.
* **Do the shards add up?**  :func:`aggregate_totals` sums the additive
  fields of the final frame.  Because every additive counter partitions
  across shards (the merge module's argument), the 4-shard totals must
  equal the solo run's totals exactly — the telemetry plane inherits
  the coordinator's correctness claim instead of weakening it.
* **Is anyone slow or stalled?**  :func:`fleet_health` reads the
  wall-clock sections: per-shard CPU share, barrier imbalance (busiest
  vs mean), pipe-stall totals.  :func:`render_health` is the one-line
  verdict the ``repro fleet`` report prints.
* **What does the scraper see?**  :mod:`repro.obs.prometheus` renders
  the final frame as text exposition.

Only ``sum``-able facts go into totals: event counts, stanza counters,
span/hop counts, metric counters, integer microjoule energy.  Gauges
(heap depth, tombstones) and float hop-duration sums stay per-shard in
the samples — deterministic, but not meaningfully additive.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: Timeline schema identifier, stamped on every totals line.
SCHEMA = "fleet_timeline/1"


class TimelineError(ValueError):
    """A timeline that cannot be exported or aggregated consistently."""


class FleetTimeline:
    """Frames appended by the coordinator, one per epoch barrier."""

    def __init__(self, fleet_id: str, devices: int, shards: int) -> None:
        self.fleet_id = fleet_id
        self.devices = devices
        self.shards = shards
        self.frames: List[Dict[str, Any]] = []

    def append(
        self,
        epoch: int,
        barrier_ms: float,
        samples: List[Optional[Dict[str, Any]]],
        handoffs: int,
        backlog: int,
        window_wall_s: float,
    ) -> Dict[str, Any]:
        """Record one barrier; returns the frame (the live view reads it)."""
        frame = {
            "epoch": epoch,
            "barrier_ms": barrier_ms,
            "samples": [sample for sample in samples if sample is not None],
            "handoffs": handoffs,
            "backlog": backlog,
            "wall": {"window_s": window_wall_s},
        }
        self.frames.append(frame)
        return frame

    def last_samples(self) -> List[Dict[str, Any]]:
        """The final frame's per-shard samples (sorted by shard id)."""
        if not self.frames:
            return []
        return sorted(
            self.frames[-1]["samples"], key=lambda sample: sample["shard"]
        )

    def totals(self) -> Dict[str, Any]:
        return aggregate_totals(self)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _sum_counter_dicts(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for part in parts:
        for name, value in part.items():
            merged[name] = merged.get(name, 0) + value
    return {name: merged[name] for name in sorted(merged)}


def aggregate_totals(timeline) -> Dict[str, Any]:
    """Additive fleet totals at the final barrier.

    Accepts a :class:`FleetTimeline` or an iterable of sample dicts (the
    final frame's).  Every field here partitions across shards, so the
    K-shard totals equal the solo run's — the CI telemetry job compares
    the two JSON documents directly.
    """
    if isinstance(timeline, FleetTimeline):
        samples = timeline.last_samples()
    else:
        samples = sorted(timeline, key=lambda sample: sample["shard"])
    if not samples:
        raise TimelineError("no samples to aggregate — was telemetry enabled?")
    barriers = {sample["barrier_ms"] for sample in samples}
    if len(barriers) != 1:
        raise TimelineError(
            f"samples from different barriers: {sorted(barriers)}"
        )
    return {
        "kind": "totals",
        "schema": SCHEMA,
        "barrier_ms": barriers.pop(),
        "shards": len(samples),
        "events": sum(sample["kernel"]["events"] for sample in samples),
        "energy_uj": sum(sample["energy_uj"] for sample in samples),
        "spans_recorded": sum(sample["spans"]["recorded"] for sample in samples),
        "server": _sum_counter_dicts(sample["server"] for sample in samples),
        "hop_counts": _sum_counter_dicts(
            {name: digest["count"] for name, digest in sample["hops"].items()}
            for sample in samples
        ),
        "counters": _sum_counter_dicts(sample["counters"] for sample in samples),
    }


# ---------------------------------------------------------------------------
# JSONL export / import
# ---------------------------------------------------------------------------

def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def timeline_to_jsonl(timeline: FleetTimeline, deterministic: bool = True) -> str:
    """The canonical export: one JSON document per line.

    ``sample`` lines carry the per-shard time-series (shards sorted
    within each barrier), ``barrier`` lines the exchange facts, and the
    final ``totals`` line the additive fleet sums.  With
    ``deterministic=True`` (the default, and what ``repro fleet
    --telemetry`` writes) every ``wall`` section is dropped, leaving a
    byte-exact function of the seed.
    """
    lines: List[str] = []
    for frame in timeline.frames:
        for sample in sorted(frame["samples"], key=lambda s: s["shard"]):
            if deterministic:
                sample = {k: v for k, v in sample.items() if k != "wall"}
            lines.append(_dumps(sample))
        barrier = {
            "kind": "barrier",
            "epoch": frame["epoch"],
            "barrier_ms": frame["barrier_ms"],
            "handoffs": frame["handoffs"],
            "backlog": frame["backlog"],
        }
        if not deterministic:
            barrier["wall"] = frame["wall"]
        lines.append(_dumps(barrier))
    if timeline.frames:
        lines.append(_dumps(timeline.totals()))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def read_timeline(source) -> List[Dict[str, Any]]:
    """Parse a JSONL export back into record dicts (path or open file)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def totals_from_jsonl(source) -> Dict[str, Any]:
    """The ``totals`` line of an exported timeline (the CI compare key)."""
    totals = [
        record for record in read_timeline(source) if record.get("kind") == "totals"
    ]
    if not totals:
        raise TimelineError("export has no totals line")
    return totals[-1]


# ---------------------------------------------------------------------------
# Health
# ---------------------------------------------------------------------------

#: A shard whose CPU share exceeds the mean by this factor is "slow".
SLOW_FACTOR = 1.5
#: Imbalance (busiest/mean CPU) above this is flagged in the verdict.
IMBALANCE_FLAG = 1.25


def fleet_health(timeline: FleetTimeline) -> Dict[str, Any]:
    """Wall-clock verdict: slow shards, stalls, barrier imbalance.

    Reads only the ``wall`` sections (cumulative per-worker CPU seconds,
    pipe-stall seconds, RSS) of the final frame, plus the per-window
    wall times the coordinator recorded.  Everything here is
    machine-dependent trend data — it never feeds the deterministic
    export.
    """
    samples = timeline.last_samples()
    shards: Dict[str, Dict[str, float]] = {}
    cpu_values: List[float] = []
    for sample in samples:
        wall = sample.get("wall") or {}
        cpu = wall.get("cpu_s", 0.0)
        cpu_values.append(cpu)
        shards[sample["shard"]] = {
            "cpu_s": round(cpu, 6),
            "stall_s": round(wall.get("stall_s", 0.0), 6),
            "rss_kb": wall.get("rss_kb") or 0,
        }
    mean_cpu = sum(cpu_values) / len(cpu_values) if cpu_values else 0.0
    max_cpu = max(cpu_values) if cpu_values else 0.0
    imbalance = (max_cpu / mean_cpu) if mean_cpu > 0 else 1.0
    slow = sorted(
        shard_id
        for shard_id, entry in shards.items()
        if mean_cpu > 0 and entry["cpu_s"] > SLOW_FACTOR * mean_cpu
    )
    total_stall = sum(entry["stall_s"] for entry in shards.values())
    window_walls = [frame["wall"]["window_s"] for frame in timeline.frames]
    return {
        "shards": shards,
        "barriers": len(timeline.frames),
        "imbalance": round(imbalance, 3),
        "slow_shards": slow,
        "stall_s_total": round(total_stall, 6),
        "window_s_max": round(max(window_walls), 6) if window_walls else 0.0,
        "window_s_mean": (
            round(sum(window_walls) / len(window_walls), 6) if window_walls else 0.0
        ),
    }


def render_health(health: Dict[str, Any]) -> str:
    """The final-report verdict lines for ``repro fleet`` / ``repro top``."""
    imbalance = health["imbalance"]
    flags: List[str] = []
    if health["slow_shards"]:
        flags.append(f"slow: {', '.join(health['slow_shards'])}")
    if imbalance > IMBALANCE_FLAG:
        flags.append(f"barrier imbalance {imbalance:.2f}x")
    verdict = "; ".join(flags) if flags else "balanced"
    lines = [
        f"health: {verdict} ({health['barriers']:,} barriers, "
        f"busiest/mean CPU {imbalance:.2f}x, "
        f"stall {health['stall_s_total']:.2f} s total)"
    ]
    for shard_id in sorted(health["shards"]):
        entry = health["shards"][shard_id]
        lines.append(
            f"  {shard_id:<12} cpu {entry['cpu_s']:>8.2f} s  "
            f"stall {entry['stall_s']:>8.2f} s  rss {entry['rss_kb']:,} kB"
        )
    return "\n".join(lines)
