"""The per-shard telemetry sampler: one snapshot per epoch barrier.

A :class:`ShardTelemetry` hangs off a :class:`~repro.core.shard.Shard`
and, when asked (the fleet worker asks at every barrier), reads the
shard's state into one plain dict.  Sampling is strictly *pull*: nothing
is scheduled on the kernel, no callback is installed, no counter is
added to any hot path — a telemetry-enabled run executes exactly the
same events as a dark one, which is what lets the timeline ride next to
the byte-identical-merge guarantee instead of endangering it.

Two kinds of fields live in a snapshot, and they never mix:

* **Simulation-keyed fields** — kernel counters, heap depth, handoff
  counts, per-hop latency digests, energy totals, invariant status.
  These are pure functions of the seed: two same-seed runs produce
  byte-identical values, and additive fields sum across shards to
  exactly the solo run's totals (:func:`repro.obs.timeline.aggregate_totals`).
* **Wall-clock fields** — worker CPU seconds, RSS, time spent stalled
  at the pipe waiting for the next barrier grant.  These live under the
  single ``wall`` key so the deterministic exporter can strip them with
  one ``pop``.

Energy is reported as integer microjoules (each device rounded, then
summed) so the fleet total is an exact integer sum no matter how devices
are partitioned — float addition order cannot leak into the totals.

The disabled form follows the repo's null-lane idiom: ``disable()``
retargets the live object to :class:`NullShardTelemetry` (identical slot
layout, so ``__class__`` assignment is legal) whose ``sample`` is a bare
``return None`` — no flag branch on the callers' path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Snapshot schema identifier; bump when the sample layout changes.
SCHEMA = "telemetry/1"


def energy_microjoules(shard) -> int:
    """Total device energy as an exact integer sum of per-device µJ.

    Rounding *per device* before summing makes the total independent of
    partitioning: a 4-shard fleet's four sums add to the solo run's sum
    bit for bit, which a float total (addition-order dependent) would
    not guarantee.
    """
    return sum(
        int(round(device.phone.energy_joules * 1e6))
        for device in shard.devices.values()
    )


def invariant_status(shard) -> Optional[Dict[str, Any]]:
    """Invariant verdict, when a monitor rides in ``shard.extras``.

    Chaos campaigns attach their :class:`~repro.chaos.invariants.InvariantMonitor`
    as ``extras["invariant_monitor"]``; plain fleet runs have none and
    report ``None``.
    """
    monitor = shard.extras.get("invariant_monitor")
    if monitor is None:
        return None
    violations = getattr(monitor, "violations", ())
    return {"ok": not violations, "violations": len(violations)}


class ShardTelemetry:
    """Pull-sampler for one shard; the fleet worker owns one."""

    __slots__ = ("shard", "enabled")

    def __init__(self, shard, enabled: bool = True) -> None:
        self.shard = shard
        self.enabled = enabled
        if not enabled:
            self.__class__ = NullShardTelemetry

    # ------------------------------------------------------------------
    def disable(self) -> None:
        """Kill switch: ``sample`` becomes a bare ``return None``."""
        self.enabled = False
        self.__class__ = NullShardTelemetry

    def enable(self) -> None:
        self.enabled = True
        self.__class__ = ShardTelemetry

    # ------------------------------------------------------------------
    def sample(
        self,
        epoch: int,
        barrier_ms: float,
        handoffs_in: int = 0,
        handoffs_out: int = 0,
        wall: Optional[Dict[str, float]] = None,
    ) -> Optional[Dict[str, Any]]:
        """One snapshot of the shard at the barrier ending ``barrier_ms``.

        ``handoffs_in``/``handoffs_out`` are the cross-shard counts of
        the window just finished (the worker knows both).  ``wall`` is
        the worker's wall-clock section, passed through untouched.
        """
        shard = self.shard
        kernel = shard.kernel
        spans = kernel.spans
        server = shard.server
        sample: Dict[str, Any] = {
            "kind": "sample",
            "epoch": epoch,
            "barrier_ms": barrier_ms,
            "shard": shard.shard_id,
            "kernel": {
                "events": kernel.events_executed,
                "pending": kernel.pending_events,
                "tombstones": kernel._tombstones,
                "compactions": kernel.compactions,
            },
            "handoffs": {"in": handoffs_in, "out": handoffs_out},
            "server": {
                "stanzas_routed": server.stanzas_routed,
                "stanzas_lost": server.stanzas_lost,
                "stanzas_stored_offline": server.stanzas_stored_offline,
            },
            "energy_uj": energy_microjoules(shard),
            "spans": {"recorded": spans.recorded, "dropped": spans.dropped},
            "hops": spans.latency_digest(),
            "counters": kernel.metrics.counter_values(),
            "invariants": invariant_status(shard),
        }
        if wall is not None:
            sample["wall"] = wall
        return sample


class NullShardTelemetry(ShardTelemetry):
    """Disabled sampler: ``sample`` is a bare ``return None``.

    The slot layout is identical to :class:`ShardTelemetry`, so the
    ``__class__`` swap is legal and ``enable()`` can swap back.
    """

    __slots__ = ()

    def __init__(self, shard, enabled: bool = False) -> None:
        self.shard = shard
        self.enabled = False

    def sample(
        self,
        epoch: int,
        barrier_ms: float,
        handoffs_in: int = 0,
        handoffs_out: int = 0,
        wall: Optional[Dict[str, float]] = None,
    ) -> Optional[Dict[str, Any]]:
        return None
