"""The world: users, their places, scan generation and connectivity.

This module ties the static environment (places, APs), the mobility
timelines and the phones together.  For each simulated user it provides:

* ``scan()`` — the access-point readings visible at the user's current
  position, fed to the phone's Wi-Fi scanner (``wifi.scan_source``);
* ``position()`` — ground-truth position for the location sensor;
* connectivity driving — Wi-Fi association at home/office, handled at
  timeline segment boundaries, which produces exactly the interface
  switching Section 4.6 describes.

The scan output format matches what the Android API gives the real Pogo:
a list of ``{"bssid", "ssid", "rssi"}`` dicts with RSSI in dBm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim.kernel import Kernel, MINUTE
from ..sim.randomness import RandomStreams
from .geometry import Point
from .mobility import DWELL, TRAVEL, Segment, Timeline, TimelineBuilder, UserProfile
from .places import Place, PlaceFactory, all_access_points
from .rssi import PropagationModel


@dataclass
class ScanReading:
    """One row of a Wi-Fi scan result, as the OS reports it."""

    bssid: str
    ssid: str
    rssi_dbm: float

    def to_message(self) -> Dict[str, Any]:
        return {"bssid": self.bssid, "ssid": self.ssid, "rssi": round(self.rssi_dbm, 1)}


class UserWorld:
    """One user's environment: places, timeline, scan generation."""

    def __init__(
        self,
        name: str,
        places: Dict[str, List[Place]],
        timeline: Timeline,
        propagation: PropagationModel,
        rng: random.Random,
        factory: PlaceFactory,
    ) -> None:
        self.name = name
        self.places = places
        self.timeline = timeline
        self.propagation = propagation
        self._rng = rng
        self._factory = factory
        self._all_places: List[Place] = [p for group in places.values() for p in group]
        self._max_range = propagation.max_range_m()
        #: Ground-truth dwell log, used by Table 4's match scoring.
        self.phone = None  # attached by the experiment harness

    # ------------------------------------------------------------------
    def segment(self, time_ms: float) -> Segment:
        return self.timeline.segment_at(time_ms)

    def position(self, time_ms: float) -> Point:
        """User position with per-query wander jitter."""
        segment = self.timeline.segment_at(time_ms)
        nominal = segment.position_at(time_ms)
        if segment.kind == DWELL and segment.place is not None:
            sigma = segment.place.radius / 2.5
            return nominal.offset(self._rng.gauss(0.0, sigma), self._rng.gauss(0.0, sigma))
        return nominal

    def current_place(self, time_ms: float) -> Optional[Place]:
        return self.timeline.place_at(time_ms)

    # ------------------------------------------------------------------
    def scan(self, time_ms: float) -> List[ScanReading]:
        """Generate one Wi-Fi scan at the user's current position."""
        segment = self.timeline.segment_at(time_ms)
        position = self.position(time_ms)
        readings: List[ScanReading] = []
        for place in self._all_places:
            # Cheap rejection by place center before per-AP sampling.
            if position.distance_to(place.center) > self._max_range + 4 * place.radius:
                continue
            for ap in place.access_points:
                rssi = self.propagation.sample_rssi(
                    position.distance_to(ap.position), self._rng
                )
                if rssi is not None:
                    readings.append(ScanReading(ap.bssid, ap.ssid, rssi))
        if segment.kind == TRAVEL:
            # Transient street APs: visible once, never again — the noise
            # the clustering algorithm's core-object rule must reject.
            for _ in range(self._rng.randint(0, 3)):
                ap = self._factory.make_street_ap(position)
                rssi = self.propagation.sample_rssi(
                    position.distance_to(ap.position), self._rng
                )
                if rssi is not None:
                    readings.append(ScanReading(ap.bssid, ap.ssid, rssi))
        readings.sort(key=lambda r: r.rssi_dbm, reverse=True)
        return readings

    # ------------------------------------------------------------------
    def wifi_internet_available(self, time_ms: float) -> bool:
        """Whether the user is somewhere with a known Wi-Fi network."""
        place = self.current_place(time_ms)
        return bool(place is not None and place.has_wifi_internet)


#: Standard per-user place mix for deployment-style experiments.
DEFAULT_PLACE_MIX = (
    ("home", "home", 1),
    ("office", "office", 1),
    ("cafe", "cafe", 2),
    ("restaurant", "restaurant", 2),
    ("gym", "gym", 1),
    ("supermarket", "supermarket", 1),
    ("friend", "friend", 2),
    ("generic", "generic", 3),
)


def build_user_world(
    name: str,
    streams: RandomStreams,
    days: int,
    profile: Optional[UserProfile] = None,
    propagation: Optional[PropagationModel] = None,
    place_mix: Sequence = DEFAULT_PLACE_MIX,
    city_extent_m: float = 6000.0,
) -> UserWorld:
    """Generate a complete, deterministic world for one user."""
    profile = profile or UserProfile(name=name)
    propagation = propagation or PropagationModel()
    place_rng = streams.stream(f"world/{name}/places")
    factory = PlaceFactory(place_rng)

    places: Dict[str, List[Place]] = {}
    for category, place_category, count in place_mix:
        group: List[Place] = []
        for i in range(count):
            center = Point(
                place_rng.uniform(-city_extent_m, city_extent_m),
                place_rng.uniform(-city_extent_m, city_extent_m),
            )
            group.append(
                factory.make_place(f"{name}/{category}{i}", center, category=place_category)
            )
        places[category] = group

    timeline_rng = streams.stream(f"world/{name}/timeline")
    timeline = TimelineBuilder(profile, places, timeline_rng).build(days)
    scan_rng = streams.stream(f"world/{name}/scans")
    return UserWorld(name, places, timeline, propagation, scan_rng, factory)


class ChargingRoutine:
    """Nightly charging behaviour: plug in at night, unplug in the morning.

    Drives the battery's charger events, which the charger-delay
    transmission policy (and SystemSens/LiveLab-style loggers) key off.
    """

    def __init__(
        self,
        kernel: Kernel,
        phone,
        rng: random.Random,
        days: int,
        plug_hour: float = 22.8,
        unplug_hour: float = 7.2,
        jitter_h: float = 0.7,
    ) -> None:
        self.kernel = kernel
        self.phone = phone
        self._rng = rng
        self.days = days
        self.plug_hour = plug_hour
        self.unplug_hour = unplug_hour
        self.jitter_h = jitter_h

    def start(self) -> None:
        from ..sim.kernel import DAY, HOUR

        for day in range(self.days):
            plug = (day + 0) * DAY + (self.plug_hour + self._rng.gauss(0.0, self.jitter_h)) * HOUR
            unplug = (day + 1) * DAY + (self.unplug_hour + self._rng.gauss(0.0, self.jitter_h)) * HOUR
            if plug > self.kernel.now:
                self.kernel.schedule_at(plug, self.phone.battery.set_charging, True)
            if unplug > self.kernel.now:
                self.kernel.schedule_at(unplug, self.phone.battery.set_charging, False)


class ConnectivityDriver:
    """Applies the world's connectivity to a phone as the user moves.

    At every timeline boundary the phone's Wi-Fi association is updated:
    connected at places with a known network (home/office), otherwise
    disconnected.  This generates the interface switches Pogo's transport
    must survive (Section 4.6).
    """

    def __init__(self, kernel: Kernel, user_world: UserWorld, phone) -> None:
        self.kernel = kernel
        self.user_world = user_world
        self.phone = phone
        self._applied = 0

    def start(self) -> None:
        self._apply(self.kernel.now)
        for boundary in self.user_world.timeline.boundaries():
            if boundary > self.kernel.now:
                self.kernel.schedule_at(boundary + 1.0, self._apply, boundary + 1.0)

    def _apply(self, time_ms: float) -> None:
        self._applied += 1
        self.phone.set_wifi_connected(self.user_world.wifi_internet_available(time_ms))
