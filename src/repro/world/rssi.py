"""Radio propagation: received signal strength for Wi-Fi scans.

The localization pipeline consumes (BSSID, RSSI) vectors; its clustering
behaviour depends on three statistical properties this model provides:

* RSSI falls off with distance (log-distance path loss), so the same place
  yields a *similar* scan vector every time;
* per-scan noise (shadowing/fading) of a few dB, so vectors are similar
  but never identical;
* weak APs drop in and out of scans entirely (sensitivity threshold plus
  a small dropout probability), which is why the paper's `scan.js`
  normalizes RSSI and the clustering uses a robust cosine similarity.

The paper's ``scan.js`` normalizes RSSI so that 0 ↦ −100 dBm and
1 ↦ −55 dBm; :func:`normalize_rssi` implements exactly that mapping.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss with log-normal shadowing."""

    #: RSSI at the 1 m reference distance, dBm.
    reference_dbm: float = -32.0
    #: Path-loss exponent; ~2 free space, 3–4 indoors.
    exponent: float = 3.0
    #: Standard deviation of per-scan shadowing noise, dB.
    sigma_db: float = 4.0
    #: Receiver sensitivity: APs below this never appear in scans.
    sensitivity_dbm: float = -95.0
    #: Probability a nominally-visible AP is missed by one scan anyway.
    dropout_probability: float = 0.04

    def mean_rssi(self, distance_m: float) -> float:
        """Expected RSSI at a distance, before noise."""
        d = max(distance_m, 1.0)
        return self.reference_dbm - 10.0 * self.exponent * math.log10(d)

    def sample_rssi(self, distance_m: float, rng: random.Random) -> Optional[float]:
        """One scan's RSSI for an AP at ``distance_m``; ``None`` if unseen."""
        rssi = self.mean_rssi(distance_m) + rng.gauss(0.0, self.sigma_db)
        if rssi < self.sensitivity_dbm:
            return None
        if rng.random() < self.dropout_probability:
            return None
        # Real radios clip: you never see better than about -25 dBm.
        return min(rssi, -25.0)

    def max_range_m(self) -> float:
        """Distance beyond which an AP can (almost) never be heard."""
        # mean + 3 sigma below sensitivity.
        budget = self.reference_dbm + 3 * self.sigma_db - self.sensitivity_dbm
        return 10.0 ** (budget / (10.0 * self.exponent))


#: RSSI normalization bounds used by the paper's scan.js (Section 4.1):
#: "normalizes received signal strength (RSSI) values so that 0 and 1
#: correspond to -100 dBm and -55 dBm respectively".
NORMALIZE_FLOOR_DBM = -100.0
NORMALIZE_CEIL_DBM = -55.0


def normalize_rssi(rssi_dbm: float) -> float:
    """Map dBm to the paper's [0, 1] scale (clipped)."""
    span = NORMALIZE_CEIL_DBM - NORMALIZE_FLOOR_DBM
    value = (rssi_dbm - NORMALIZE_FLOOR_DBM) / span
    return max(0.0, min(1.0, value))


def denormalize_rssi(value: float) -> float:
    """Inverse of :func:`normalize_rssi` for values inside [0, 1]."""
    span = NORMALIZE_CEIL_DBM - NORMALIZE_FLOOR_DBM
    return NORMALIZE_FLOOR_DBM + value * span
