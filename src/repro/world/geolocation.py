"""Simulated geolocation service (the paper used Google's Gears API).

The collector-side ``collect.js`` script "uses Google's geolocation
service to convert [cluster characterizations] into a longitude, latitude
pair" (Section 4.1).  We cannot call Google, so the service is backed by
the world model's own AP registry: a weighted centroid of the known APs in
the query, like real Wi-Fi positioning systems.

The service deliberately has the real API's failure modes: unknown BSSIDs
are ignored, and a query with no known APs returns ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from .geometry import Point, to_latlon
from .places import AccessPoint


@dataclass(frozen=True)
class GeoFix:
    """A resolved position."""

    latitude: float
    longitude: float
    accuracy_m: float
    matched_aps: int


class GeolocationService:
    """BSSID-set → (lat, lon) resolver backed by an AP registry."""

    def __init__(self, access_points: Iterable[AccessPoint] = ()) -> None:
        self._registry: Dict[str, Point] = {}
        self.query_count = 0
        self.miss_count = 0
        for ap in access_points:
            self.register(ap)

    def register(self, ap: AccessPoint) -> None:
        self._registry[ap.bssid] = ap.position

    def register_all(self, aps: Iterable[AccessPoint]) -> None:
        for ap in aps:
            self.register(ap)

    def __len__(self) -> int:
        return len(self._registry)

    def knows(self, bssid: str) -> bool:
        return bssid in self._registry

    def locate(self, observations: Mapping[str, float]) -> Optional[GeoFix]:
        """Resolve a ``{bssid: weight}`` observation to a position.

        Weights are relative signal strengths (the normalized RSSI values
        the clustering pipeline already carries); stronger APs pull the
        estimate harder.  Returns ``None`` when no BSSID is known.
        """
        self.query_count += 1
        total_weight = 0.0
        x = 0.0
        y = 0.0
        matched = 0
        for bssid, weight in observations.items():
            position = self._registry.get(bssid)
            if position is None:
                continue
            w = max(float(weight), 0.05)
            x += position.x * w
            y += position.y * w
            total_weight += w
            matched += 1
        if matched == 0:
            self.miss_count += 1
            return None
        centroid = Point(x / total_weight, y / total_weight)
        lat, lon = to_latlon(centroid)
        # Accuracy degrades with fewer matched APs, as with the real API.
        accuracy = 150.0 / matched + 20.0
        return GeoFix(latitude=lat, longitude=lon, accuracy_m=accuracy, matched_aps=matched)

    def locate_bssids(self, bssids: Sequence[str]) -> Optional[GeoFix]:
        """Resolve an unweighted BSSID list."""
        return self.locate({bssid: 1.0 for bssid in bssids})
