"""User mobility: daily schedules that produce dwell/travel timelines.

The 24-day localization deployment (Section 5.3) ran against eight real
people living their lives.  The clustering pipeline only cares about the
*structure* of that behaviour: extended dwells at a stable set of places,
separated by travel during which scans see transient street APs.  This
module generates exactly that structure:

* weekday routine: home overnight → commute → office (with optional lunch
  outing) → commute → optional evening activity → home;
* weekend routine: home with a few outings;
* a "mobile" variant (field work, many short client visits per day) that
  produces the order-of-magnitude larger location count the paper reports
  for user 3 (1,282 locations vs. 121–333 for everyone else).

Timelines are precomputed as contiguous segments; position queries are a
binary search, which keeps the 24-day × 8-user simulation cheap.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.kernel import DAY, HOUR, MINUTE
from .geometry import Point
from .places import Place

DWELL = "dwell"
TRAVEL = "travel"


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of a user's timeline."""

    kind: str
    start_ms: float
    end_ms: float
    place: Optional[Place] = None
    origin: Optional[Point] = None
    destination: Optional[Point] = None

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def position_at(self, time_ms: float) -> Point:
        """Nominal position at ``time_ms`` (dwell center / travel lerp)."""
        if self.kind == DWELL:
            assert self.place is not None
            return self.place.center
        assert self.origin is not None and self.destination is not None
        if self.end_ms == self.start_ms:
            return self.destination
        t = (time_ms - self.start_ms) / (self.end_ms - self.start_ms)
        return self.origin.lerp(self.destination, max(0.0, min(1.0, t)))


@dataclass
class UserProfile:
    """Behavioural parameters for one simulated participant."""

    name: str
    #: "regular" office worker or "mobile" field worker (user 3).
    lifestyle: str = "regular"
    work_start_h: float = 9.0
    work_start_jitter_h: float = 0.6
    work_end_h: float = 17.5
    work_end_jitter_h: float = 0.9
    commute_min: float = 25.0
    commute_jitter_min: float = 8.0
    lunch_out_probability: float = 0.45
    evening_out_probability: float = 0.35
    weekend_outings: Tuple[int, int] = (1, 3)
    #: For "mobile" lifestyles: client visits per workday.
    visits_per_day: Tuple[int, int] = (6, 10)
    visit_duration_min: Tuple[float, float] = (20.0, 70.0)


class Timeline:
    """A user's full simulated itinerary with O(log n) position lookup."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        if not segments:
            raise ValueError("timeline needs at least one segment")
        self.segments: List[Segment] = list(segments)
        self._starts = [s.start_ms for s in self.segments]
        for earlier, later in zip(self.segments, self.segments[1:]):
            if later.start_ms < earlier.end_ms - 1e-6:
                raise ValueError("timeline segments must be ordered and non-overlapping")

    def segment_at(self, time_ms: float) -> Segment:
        index = bisect.bisect_right(self._starts, time_ms) - 1
        index = max(0, min(index, len(self.segments) - 1))
        return self.segments[index]

    def place_at(self, time_ms: float) -> Optional[Place]:
        segment = self.segment_at(time_ms)
        return segment.place if segment.kind == DWELL else None

    def position_at(self, time_ms: float) -> Point:
        return self.segment_at(time_ms).position_at(time_ms)

    def dwells(self, min_duration_ms: float = 0.0) -> List[Segment]:
        """All dwell segments at least ``min_duration_ms`` long."""
        return [
            s for s in self.segments if s.kind == DWELL and s.duration_ms >= min_duration_ms
        ]

    @property
    def start_ms(self) -> float:
        return self.segments[0].start_ms

    @property
    def end_ms(self) -> float:
        return self.segments[-1].end_ms

    def boundaries(self) -> List[float]:
        """Segment-change times (used to drive connectivity updates)."""
        return [s.start_ms for s in self.segments[1:]]


class TimelineBuilder:
    """Generates a :class:`Timeline` from a profile and a set of places.

    ``places`` maps category → list of candidate places; "home" and
    "office" must contain exactly the user's own home/office.
    """

    def __init__(self, profile: UserProfile, places: Dict[str, List[Place]], rng: random.Random):
        if "home" not in places or not places["home"]:
            raise ValueError("user needs a home place")
        self.profile = profile
        self.places = places
        self.rng = rng
        self._segments: List[Segment] = []
        self._cursor_ms = 0.0
        self._here: Place = places["home"][0]

    # -- low-level emit helpers ----------------------------------------
    def _dwell_until(self, end_ms: float) -> None:
        if end_ms <= self._cursor_ms:
            return
        self._segments.append(
            Segment(DWELL, self._cursor_ms, end_ms, place=self._here)
        )
        self._cursor_ms = end_ms

    def _travel_to(self, destination: Place, duration_ms: float) -> None:
        start = self._cursor_ms
        self._segments.append(
            Segment(
                TRAVEL,
                start,
                start + duration_ms,
                origin=self._here.center,
                destination=destination.center,
            )
        )
        self._cursor_ms = start + duration_ms
        self._here = destination

    def _commute_ms(self) -> float:
        p = self.profile
        minutes = max(5.0, self.rng.gauss(p.commute_min, p.commute_jitter_min))
        return minutes * MINUTE

    def _short_hop_ms(self) -> float:
        return max(4.0, self.rng.gauss(12.0, 4.0)) * MINUTE

    def _pick(self, category: str) -> Optional[Place]:
        candidates = self.places.get(category) or []
        return self.rng.choice(candidates) if candidates else None

    # -- day builders ---------------------------------------------------
    def build(self, days: int, start_ms: float = 0.0) -> Timeline:
        """Generate ``days`` consecutive days starting at midnight."""
        self._cursor_ms = start_ms
        self._here = self.places["home"][0]
        for day in range(days):
            day_start = start_ms + day * DAY
            weekday = day % 7  # day 0 is a Monday
            if weekday < 5:
                if self.profile.lifestyle == "mobile":
                    self._mobile_workday(day_start)
                else:
                    self._office_workday(day_start)
            else:
                self._weekend_day(day_start)
        # Close the final night at home.
        self._dwell_until(start_ms + days * DAY)
        return Timeline(self._segments)

    def _office_workday(self, day_start: float) -> None:
        p, rng = self.profile, self.rng
        work_start = day_start + max(6.0, rng.gauss(p.work_start_h, p.work_start_jitter_h)) * HOUR
        commute = self._commute_ms()
        self._dwell_until(max(self._cursor_ms, work_start - commute))
        office = self._pick("office")
        if office is None:
            return
        self._travel_to(office, commute)

        work_end = day_start + max(
            p.work_start_h + 4.0, rng.gauss(p.work_end_h, p.work_end_jitter_h)
        ) * HOUR
        if rng.random() < p.lunch_out_probability:
            lunch_place = self._pick("cafe") or self._pick("restaurant")
            if lunch_place is not None:
                lunch_start = day_start + rng.gauss(12.3, 0.3) * HOUR
                if lunch_start > self._cursor_ms + 30 * MINUTE:
                    self._dwell_until(lunch_start)
                    hop = self._short_hop_ms()
                    self._travel_to(lunch_place, hop)
                    self._dwell_until(self._cursor_ms + rng.gauss(40.0, 8.0) * MINUTE)
                    self._travel_to(office, hop)
        self._dwell_until(max(self._cursor_ms, work_end))

        home = self.places["home"][0]
        if rng.random() < p.evening_out_probability:
            venue = self._pick("gym") or self._pick("restaurant") or self._pick("friend")
            if venue is not None:
                self._travel_to(venue, self._short_hop_ms())
                self._dwell_until(self._cursor_ms + rng.gauss(90.0, 25.0) * MINUTE)
        self._travel_to(home, self._commute_ms())

    def _mobile_workday(self, day_start: float) -> None:
        """Field-worker day: many short client visits (user 3's pattern)."""
        p, rng = self.profile, self.rng
        leave = day_start + max(6.5, rng.gauss(8.5, 0.5)) * HOUR
        self._dwell_until(leave)
        visits = rng.randint(*p.visits_per_day)
        categories = ["generic", "cafe", "office", "supermarket", "restaurant", "friend"]
        for _ in range(visits):
            venue = self._pick(rng.choice(categories))
            if venue is None:
                continue
            self._travel_to(venue, self._short_hop_ms())
            lo, hi = p.visit_duration_min
            self._dwell_until(self._cursor_ms + rng.uniform(lo, hi) * MINUTE)
            if self._cursor_ms > day_start + 18.5 * HOUR:
                break
        self._travel_to(self.places["home"][0], self._commute_ms())

    def _weekend_day(self, day_start: float) -> None:
        p, rng = self.profile, self.rng
        outings = rng.randint(*p.weekend_outings)
        cursor_h = rng.gauss(10.5, 1.0)
        for _ in range(outings):
            venue = self._pick(rng.choice(["supermarket", "friend", "gym", "cafe", "restaurant"]))
            if venue is None:
                continue
            outing_start = day_start + max(8.0, cursor_h) * HOUR
            if outing_start <= self._cursor_ms:
                outing_start = self._cursor_ms + 30 * MINUTE
            self._dwell_until(outing_start)
            self._travel_to(venue, self._short_hop_ms())
            duration_min = rng.gauss(75.0, 30.0)
            self._dwell_until(self._cursor_ms + max(20.0, duration_min) * MINUTE)
            self._travel_to(self.places["home"][0], self._short_hop_ms())
            cursor_h = (self._cursor_ms - day_start) / HOUR + rng.gauss(2.0, 0.7)


def splice_surge(
    timeline: Timeline,
    venue: Place,
    start_ms: float,
    end_ms: float,
    rng: random.Random,
) -> Timeline:
    """Overlay a crowd-surge venue visit onto an existing timeline.

    Whatever the user was doing during ``[start_ms, end_ms)`` is replaced
    by travel to the venue, a dwell there, and travel back onto the
    original itinerary — the structural ingredient of a stadium evening
    or commuter crush.  The surrounding segments are preserved (straddlers
    are truncated at the window edges), so splicing one user's surge never
    perturbs anyone else's timeline.
    """
    if not start_ms < end_ms:
        raise ValueError("surge window must have start < end")
    if start_ms < timeline.start_ms or end_ms > timeline.end_ms:
        raise ValueError("surge window must lie within the timeline")

    entry = timeline.position_at(start_ms)
    exit_ = timeline.position_at(end_ms)

    before: List[Segment] = []
    after: List[Segment] = []
    for seg in timeline.segments:
        if seg.end_ms <= start_ms:
            before.append(seg)
        elif seg.start_ms >= end_ms:
            after.append(seg)
        else:
            if seg.start_ms < start_ms:
                if seg.kind == DWELL:
                    head = replace(seg, end_ms=start_ms)
                else:
                    head = replace(
                        seg, end_ms=start_ms, destination=seg.position_at(start_ms)
                    )
                if head.duration_ms > 1e-9:
                    before.append(head)
            if seg.end_ms > end_ms:
                if seg.kind == DWELL:
                    tail = replace(seg, start_ms=end_ms)
                else:
                    tail = replace(
                        seg, start_ms=end_ms, origin=seg.position_at(end_ms)
                    )
                if tail.duration_ms > 1e-9:
                    after.append(tail)

    window = end_ms - start_ms
    travel_in = min(window / 3.0, max(4 * MINUTE, rng.gauss(15.0, 4.0) * MINUTE))
    travel_out = min(window / 3.0, max(4 * MINUTE, rng.gauss(15.0, 4.0) * MINUTE))
    mid = [
        Segment(TRAVEL, start_ms, start_ms + travel_in,
                origin=entry, destination=venue.center),
        Segment(DWELL, start_ms + travel_in, end_ms - travel_out, place=venue),
        Segment(TRAVEL, end_ms - travel_out, end_ms,
                origin=venue.center, destination=exit_),
    ]
    return Timeline(before + mid + after)

