"""Places and access points: the static Wi-Fi environment.

A *place* is somewhere a user dwells — home, office, café — with a set of
access points installed in and around it.  The localization application's
entire premise (Section 4.1) is that the set of visible APs, weighted by
signal strength, characterizes a place.

BSSIDs are generated like real MAC addresses, including **locally
administered** ones (second hex digit 2/6/A/E): the paper's ``scan.js``
"sanitizes the raw results by removing locally administered access
points" (these are ad-hoc/virtual interfaces that move around with
devices rather than staying put), so the world must contain some for the
filter to be meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .geometry import Point

#: Fraction of generated APs that are locally administered (phones sharing
#: their connection, printers, smart TVs).
DEFAULT_LOCALLY_ADMINISTERED_FRACTION = 0.12


def make_bssid(rng: random.Random, locally_administered: bool = False) -> str:
    """Generate a plausible BSSID (lowercase, colon-separated).

    The locally-administered bit is bit 1 of the first octet.
    """
    octets = [rng.randrange(256) for _ in range(6)]
    if locally_administered:
        octets[0] |= 0x02
    else:
        octets[0] &= ~0x02
    # Clear the multicast bit; APs beacon from unicast addresses.
    octets[0] &= ~0x01
    return ":".join(f"{o:02x}" for o in octets)


def is_locally_administered(bssid: str) -> bool:
    """Check the locally-administered bit of a BSSID string."""
    first_octet = int(bssid.split(":")[0], 16)
    return bool(first_octet & 0x02)


@dataclass(frozen=True)
class AccessPoint:
    """One installed Wi-Fi access point."""

    bssid: str
    ssid: str
    position: Point
    #: Some APs offer internet the phone can associate with (home/office).
    provides_internet: bool = False

    @property
    def locally_administered(self) -> bool:
        return is_locally_administered(self.bssid)


@dataclass
class Place:
    """A location where users dwell, with its surrounding APs."""

    name: str
    center: Point
    #: Radius within which the user wanders while dwelling, metres.
    radius: float = 15.0
    access_points: List[AccessPoint] = field(default_factory=list)
    #: Whether the phone can get internet over Wi-Fi here (home, office).
    has_wifi_internet: bool = False
    #: Category tag, e.g. "home", "office", "cafe" — used by mobility.
    category: str = "generic"

    def internet_aps(self) -> List[AccessPoint]:
        return [ap for ap in self.access_points if ap.provides_internet]


class PlaceFactory:
    """Deterministically generates places with realistic AP surroundings."""

    #: (min, max) AP counts by place category: an office building is dense,
    #: a gym is sparse.
    AP_COUNT_RANGES: Dict[str, tuple] = {
        "home": (5, 9),
        "office": (8, 16),
        "cafe": (4, 8),
        "gym": (3, 6),
        "supermarket": (3, 7),
        "friend": (3, 8),
        "restaurant": (4, 9),
        "foreign": (3, 8),
        "generic": (3, 8),
    }

    SSID_POOL = (
        "FRITZ!Box", "Ziggo", "KPN-Thuis", "TMNL-WLAN", "eduroam", "linksys",
        "NETGEAR", "TP-LINK", "CaffeLatte", "GuestWiFi", "OfficeNet",
        "dlink", "UPC-WiFi", "HotSpot", "SpeedTouch",
    )

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._made = 0

    def make_place(
        self,
        name: str,
        center: Point,
        category: str = "generic",
        radius: Optional[float] = None,
        ap_count: Optional[int] = None,
        has_wifi_internet: Optional[bool] = None,
    ) -> Place:
        rng = self._rng
        self._made += 1
        lo, hi = self.AP_COUNT_RANGES.get(category, self.AP_COUNT_RANGES["generic"])
        if ap_count is None:
            ap_count = rng.randint(lo, hi)
        if radius is None:
            radius = {"home": 10.0, "office": 25.0}.get(category, 12.0)
        if has_wifi_internet is None:
            has_wifi_internet = category in ("home", "office")
        aps: List[AccessPoint] = []
        for i in range(ap_count):
            local = rng.random() < DEFAULT_LOCALLY_ADMINISTERED_FRACTION
            # APs are in the building and its neighbours: scatter within a
            # couple of times the dwell radius.
            spread = radius * (0.6 + 1.2 * rng.random())
            position = center.offset(rng.gauss(0.0, spread), rng.gauss(0.0, spread))
            aps.append(
                AccessPoint(
                    bssid=make_bssid(rng, locally_administered=local),
                    ssid=f"{rng.choice(self.SSID_POOL)}-{rng.randrange(1000, 9999)}",
                    position=position,
                    provides_internet=(i == 0 and has_wifi_internet and not local),
                )
            )
        return Place(
            name=name,
            center=center,
            radius=radius,
            access_points=aps,
            has_wifi_internet=has_wifi_internet,
            category=category,
        )

    def make_street_ap(self, near: Point) -> AccessPoint:
        """A transient AP glimpsed while travelling."""
        rng = self._rng
        local = rng.random() < DEFAULT_LOCALLY_ADMINISTERED_FRACTION
        return AccessPoint(
            bssid=make_bssid(rng, locally_administered=local),
            ssid=f"{rng.choice(self.SSID_POOL)}-{rng.randrange(1000, 9999)}",
            position=near.offset(rng.gauss(0.0, 40.0), rng.gauss(0.0, 40.0)),
        )


def all_access_points(places: Sequence[Place]) -> List[AccessPoint]:
    """Flat list of every AP across places (for the geolocation DB)."""
    result: List[AccessPoint] = []
    for place in places:
        result.extend(place.access_points)
    return result
