"""City-scale generative worlds for the scenario engine.

The deployment worlds in :mod:`repro.world.environment` give every user a
private pocket universe of ~13 places.  Scenario presets need something
bigger and *shared*: a city with thousands of candidate sites, plus named
venues (a stadium, a market square) that many users visit at once so that
campaigns like contact tracing can observe co-location through common
Wi-Fi anchors.

Design constraints, in priority order:

1. **Placement independence** — a device's world must be a pure function
   of ``(scenario seed, jid)`` so that solo and sharded runs build
   byte-identical worlds.  Every random draw here comes from a private
   ``random.Random`` keyed by :func:`derive_seed`, never from shared
   shard streams.
2. **Cheap at 10k+ places** — the city layout is a flat list of
   ``(Point, category)`` site tuples; access points are only materialized
   for the handful of sites each citizen actually frequents.
3. **Shared venues** — venue places (with their BSSIDs) are materialized
   once per scenario and handed to every attendee, so two phones at the
   stadium report overlapping anchors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.kernel import DAY, HOUR
from ..sim.randomness import derive_seed
from .geometry import Point
from .mobility import Timeline, TimelineBuilder, UserProfile, splice_surge
from .places import Place, PlaceFactory
from .rssi import PropagationModel

#: Site categories cycled through when laying out the city grid.
SITE_CATEGORIES = ("cafe", "restaurant", "gym", "supermarket", "friend", "generic")

#: How many city sites each citizen adopts as personal haunts.
SITES_PER_CITIZEN = 8


@dataclass(frozen=True)
class VenueSpec:
    """A named shared venue (stadium, concert hall, market square)."""

    name: str
    category: str = "stadium"
    radius_m: float = 120.0
    ap_count: int = 24
    has_wifi_internet: bool = False


class CityPlan:
    """The shared city: cheap site tuples plus materialized venues."""

    def __init__(
        self,
        seed: int,
        sites: List[Tuple[Point, str]],
        venues: Dict[str, Place],
        extent_m: float,
    ) -> None:
        self.seed = seed
        self.sites = sites
        self.venues = venues
        self.extent_m = extent_m

    @property
    def n_places(self) -> int:
        return len(self.sites) + len(self.venues)


def build_city(
    seed: int,
    n_places: int,
    venue_specs: Sequence[VenueSpec] = (),
    extent_m: float = 6000.0,
) -> CityPlan:
    """Lay out a deterministic city for one scenario.

    Sites are uniform over the square extent with categories cycling
    through :data:`SITE_CATEGORIES`; venues get their own RNG so adding a
    site never perturbs a venue's BSSIDs (or vice versa).
    """
    layout_rng = random.Random(derive_seed(seed, "scenario/city/layout"))
    sites: List[Tuple[Point, str]] = []
    for i in range(n_places):
        center = Point(
            layout_rng.uniform(-extent_m, extent_m),
            layout_rng.uniform(-extent_m, extent_m),
        )
        sites.append((center, SITE_CATEGORIES[i % len(SITE_CATEGORIES)]))

    venue_rng = random.Random(derive_seed(seed, "scenario/city/venues"))
    venue_factory = PlaceFactory(venue_rng)
    venues: Dict[str, Place] = {}
    for vs in venue_specs:
        center = Point(
            venue_rng.uniform(-extent_m / 2, extent_m / 2),
            venue_rng.uniform(-extent_m / 2, extent_m / 2),
        )
        venues[vs.name] = venue_factory.make_place(
            f"venue/{vs.name}",
            center,
            category=vs.category,
            radius=vs.radius_m,
            ap_count=vs.ap_count,
            has_wifi_internet=vs.has_wifi_internet,
        )
    return CityPlan(seed, sites, venues, extent_m)


def build_citizen_world(
    jid: str,
    seed: int,
    city: CityPlan,
    days: int,
    profile: Optional[UserProfile] = None,
    surges: Sequence = (),
    propagation: Optional[PropagationModel] = None,
):
    """Build one citizen's :class:`~repro.world.environment.UserWorld`.

    ``surges`` is a sequence of ``(surge, start_ms, end_ms)`` triples the
    citizen attends; each splices a venue visit into the daily routine.
    Returns ``(world, stats)`` where ``stats`` is a small counter dict
    merged into the scenario report.
    """
    from .environment import UserWorld

    profile = profile or UserProfile(name=jid)
    propagation = propagation or PropagationModel()

    place_rng = random.Random(derive_seed(seed, f"scenario/world/{jid}/places"))
    factory = PlaceFactory(place_rng)

    places: Dict[str, List[Place]] = {
        "home": [
            factory.make_place(
                f"{jid}/home",
                Point(
                    place_rng.uniform(-city.extent_m, city.extent_m),
                    place_rng.uniform(-city.extent_m, city.extent_m),
                ),
                category="home",
            )
        ],
        "office": [
            factory.make_place(
                f"{jid}/office",
                Point(
                    place_rng.uniform(-city.extent_m, city.extent_m),
                    place_rng.uniform(-city.extent_m, city.extent_m),
                ),
                category="office",
            )
        ],
    }
    # Adopt a handful of city sites as personal haunts.  The geometry is
    # shared city state; the APs are materialized per citizen.
    k = min(SITES_PER_CITIZEN, len(city.sites))
    if k:
        for index in sorted(place_rng.sample(range(len(city.sites)), k)):
            center, category = city.sites[index]
            place = factory.make_place(
                f"{jid}/site{index}", center, category=category
            )
            places.setdefault(category, []).append(place)

    timeline_rng = random.Random(derive_seed(seed, f"scenario/world/{jid}/timeline"))
    timeline = TimelineBuilder(profile, places, timeline_rng).build(days)

    splices = 0
    for surge, start_ms, end_ms in surges:
        venue = city.venues[surge.venue]
        surge_rng = random.Random(
            derive_seed(seed, f"scenario/world/{jid}/surge/{surge.name}")
        )
        timeline = splice_surge(timeline, venue, start_ms, end_ms, surge_rng)
        places.setdefault("venue", [])
        if venue not in places["venue"]:
            places["venue"].append(venue)
        splices += 1

    scan_rng = random.Random(derive_seed(seed, f"scenario/world/{jid}/scans"))
    world = UserWorld(jid, places, timeline, propagation, scan_rng, factory)
    stats = {
        "places": sum(len(group) for group in places.values()),
        "segments": len(timeline.segments),
        "splices": splices,
    }
    return world, stats
