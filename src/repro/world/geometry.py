"""Planar geometry for the world model.

Positions are in metres on a local tangent plane; the geolocation service
converts to (latitude, longitude) around a base coordinate.  The polygon
containment test backs the RogueFinder example (Listing 2's
``locationInPolygon``) and the world's geofenced zones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """A point on the local plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation; ``t`` in [0, 1]."""
        return Point(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)


class Polygon:
    """A simple polygon with ray-casting containment.

    Mirrors AnonyTL's ``(In location (Polygon ...))`` construct that the
    RogueFinder comparison (Section 5.1) is built around.
    """

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        self.vertices: List[Point] = list(vertices)

    @classmethod
    def from_tuples(cls, tuples: Iterable[Tuple[float, float]]) -> "Polygon":
        return cls([Point(x, y) for x, y in tuples])

    def contains(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if _on_segment(point, a, b):
                return True
            intersects = (a.y > point.y) != (b.y > point.y) and point.x < (
                (b.x - a.x) * (point.y - a.y) / (b.y - a.y) + a.x
            )
            if intersects:
                inside = not inside
        return inside

    def bounding_box(self) -> Tuple[Point, Point]:
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    def centroid(self) -> Point:
        xs = sum(v.x for v in self.vertices)
        ys = sum(v.y for v in self.vertices)
        return Point(xs / len(self.vertices), ys / len(self.vertices))


def _on_segment(p: Point, a: Point, b: Point, eps: float = 1e-9) -> bool:
    """Whether ``p`` lies on segment ``ab``."""
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > eps:
        return False
    dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)
    if dot < -eps:
        return False
    sq_len = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return dot <= sq_len + eps


#: Base coordinate for the metre → degree conversion (Delft, NL — where the
#: paper's deployment ran).
BASE_LATITUDE = 52.0022
BASE_LONGITUDE = 4.3736
_METERS_PER_DEG_LAT = 111_320.0


def to_latlon(point: Point) -> Tuple[float, float]:
    """Convert a local-plane point to (latitude, longitude)."""
    lat = BASE_LATITUDE + point.y / _METERS_PER_DEG_LAT
    lon = BASE_LONGITUDE + point.x / (
        _METERS_PER_DEG_LAT * math.cos(math.radians(BASE_LATITUDE))
    )
    return lat, lon


def from_latlon(lat: float, lon: float) -> Point:
    """Inverse of :func:`to_latlon`."""
    y = (lat - BASE_LATITUDE) * _METERS_PER_DEG_LAT
    x = (lon - BASE_LONGITUDE) * _METERS_PER_DEG_LAT * math.cos(math.radians(BASE_LATITUDE))
    return Point(x, y)
