"""Deployment disruptions: the events that made Table 4 imperfect.

Section 5.3 attributes every data-quality problem in the localization
deployment to a concrete disruption:

* clusters lost or truncated because "the clustering algorithm [was]
  interrupted half-way through building a cluster ... if a phone was
  rebooted, ran out of battery, or when we uploaded a new version of the
  script";
* user 2a "made a trip abroad and turned off data roaming", so buffered
  messages aged past the 24-hour limit and were purged;
* user 3 "experienced problems with his 3G Internet access resulting in
  two days of missing data".

This module schedules exactly those events against a simulated phone (and
the Pogo runtime's script-update hook), so the Table 4 benchmark can
regenerate the paper's match/partial percentages mechanism-for-mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.kernel import DAY, HOUR, MINUTE, Kernel
from ..sim.randomness import as_random

REBOOT = "reboot"
BATTERY_OUT = "battery_out"
SCRIPT_UPDATE = "script_update"
DATA_OFF = "data_off"
DATA_ON = "data_on"
CELL_OUTAGE_START = "cell_outage_start"
CELL_OUTAGE_END = "cell_outage_end"
WIFI_OFF = "wifi_off"
WIFI_ON = "wifi_on"


@dataclass(frozen=True)
class Disruption:
    """One scheduled disruption event."""

    time_ms: float
    kind: str


@dataclass
class DisruptionPlan:
    """An ordered list of disruptions for one device."""

    events: List[Disruption] = field(default_factory=list)

    def add(self, time_ms: float, kind: str) -> "DisruptionPlan":
        self.events.append(Disruption(time_ms, kind))
        return self

    def sorted_events(self) -> List[Disruption]:
        return sorted(self.events, key=lambda e: e.time_ms)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def schedule(
        self,
        kernel: Kernel,
        phone,
        on_script_update: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install every event on the kernel."""
        for event in self.sorted_events():
            if event.time_ms < kernel.now:
                continue
            kernel.schedule_at(event.time_ms, self._apply, event, phone, on_script_update)

    @staticmethod
    def _apply(event: Disruption, phone, on_script_update: Optional[Callable[[], None]]) -> None:
        if event.kind == REBOOT:
            phone.reboot()
        elif event.kind == BATTERY_OUT:
            # A battery-out is a reboot with a longer outage (finding a
            # charger) from the middleware's point of view.
            phone.reboot(downtime_ms=45 * MINUTE)
        elif event.kind == SCRIPT_UPDATE:
            if on_script_update is not None:
                on_script_update()
        elif event.kind == DATA_OFF:
            phone.set_data_enabled(False)
        elif event.kind == DATA_ON:
            phone.set_data_enabled(True)
        elif event.kind == CELL_OUTAGE_START:
            phone.set_cell_coverage(False)
        elif event.kind == CELL_OUTAGE_END:
            phone.set_cell_coverage(True)
        elif event.kind == WIFI_OFF:
            # "No known networks": association suppressed, scanning works.
            phone.suppress_wifi_association(True)
        elif event.kind == WIFI_ON:
            phone.suppress_wifi_association(False)
        else:
            raise ValueError(f"unknown disruption kind: {event.kind!r}")


def random_reboots(
    rng,
    days: int,
    rate_per_day: float = 0.18,
    start_ms: float = 0.0,
) -> List[Disruption]:
    """Poisson-ish reboot schedule over the deployment.

    ``rng`` is anything :func:`~repro.sim.randomness.as_random` accepts —
    a seeded ``random.Random``, a ``RandomStreams`` registry or an int
    seed.  The bare ``random`` module is rejected: disruption schedules
    must replay bit-for-bit from the experiment seed alone.
    """
    rng = as_random(rng, "disruptions/reboots")
    events: List[Disruption] = []
    t = start_ms
    horizon = start_ms + days * DAY
    if rate_per_day <= 0:
        return events
    mean_gap = DAY / rate_per_day
    while True:
        t += rng.expovariate(1.0 / mean_gap)
        if t >= horizon:
            break
        events.append(Disruption(t, REBOOT))
    return events


def random_data_gaps(
    rng,
    days: int,
    rate_per_day: float = 0.5,
    mean_gap_minutes: float = 20.0,
    start_ms: float = 0.0,
) -> List[Disruption]:
    """Random mobile-data outages: DATA_OFF / DATA_ON window pairs.

    Generalizes user 2a's roaming-off trip and user 3's flaky 3G into a
    churn process the chaos scenarios can dial up: outages arrive
    Poisson-ish at ``rate_per_day`` and last an exponentially distributed
    number of minutes.  Draws go through the same seeded-stream
    discipline as :func:`random_reboots`.
    """
    rng = as_random(rng, "disruptions/data-gaps")
    events: List[Disruption] = []
    if rate_per_day <= 0:
        return events
    t = start_ms
    horizon = start_ms + days * DAY
    mean_arrival_gap = DAY / rate_per_day
    while True:
        t += rng.expovariate(1.0 / mean_arrival_gap)
        if t >= horizon:
            break
        duration = rng.expovariate(1.0 / (mean_gap_minutes * MINUTE))
        events.append(Disruption(t, DATA_OFF))
        events.append(Disruption(min(t + duration, horizon), DATA_ON))
        t += duration
    return events


def script_update_schedule(days: int, update_days: Optional[List[int]] = None) -> List[Disruption]:
    """Experimenter-driven script pushes (same instants for every user).

    Researchers "rarely get their algorithms right on the first try"
    (Section 1) — the deployment saw several mid-run updates, each of
    which restarted the scripts and (pre freeze/thaw) lost their state.
    """
    if update_days is None:
        update_days = [2, 5, 9, 16]
    return [
        Disruption(day * DAY + 14 * HOUR, SCRIPT_UPDATE)
        for day in update_days
        if day < days
    ]


def trip_abroad(start_day: float, end_day: float) -> List[Disruption]:
    """User 2a's trip: data roaming off for the whole trip.

    Abroad there are no known Wi-Fi networks either, so Wi-Fi offload is
    unavailable for the duration — which is why messages aged past the
    24-hour limit and were purged.
    """
    return [
        Disruption(start_day * DAY, DATA_OFF),
        Disruption(start_day * DAY, WIFI_OFF),
        Disruption(end_day * DAY, DATA_ON),
        Disruption(end_day * DAY, WIFI_ON),
    ]


def cell_outage(start_day: float, end_day: float) -> List[Disruption]:
    """User 3's broken 3G subscription: two days without mobile data."""
    return [
        Disruption(start_day * DAY, CELL_OUTAGE_START),
        Disruption(end_day * DAY, CELL_OUTAGE_END),
    ]


def standard_plan(
    rng,
    days: int,
    reboot_rate_per_day: float = 0.18,
    update_days: Optional[List[int]] = None,
    extra: Optional[List[Disruption]] = None,
) -> DisruptionPlan:
    """The default per-user plan: random reboots + shared script updates.

    ``rng`` follows the :func:`random_reboots` contract (seeded
    ``random.Random`` / ``RandomStreams`` / int seed; never the global
    ``random`` module).
    """
    plan = DisruptionPlan()
    plan.events.extend(random_reboots(as_random(rng, "disruptions/reboots"), days, reboot_rate_per_day))
    plan.events.extend(script_update_schedule(days, update_days))
    if extra:
        plan.events.extend(extra)
    return plan
