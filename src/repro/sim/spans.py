"""Message lifecycle tracing: causal spans, flight recorder, energy ledger.

The paper's evaluation correlates *layers*: a sensor reading published by
a script rides the broker, dwells in the outgoing buffer, waits for a
tail-synchronized flush decision, crosses the modem (dragging it through
RRC states that cost real energy, Figure 3), transits the XMPP
switchboard and finally lands in a collector script.  The flat
:class:`~repro.sim.trace.TraceRecorder` log can show *that* these things
happened; it cannot answer "where did *this* reading spend its time and
energy between ``publish()`` and delivery?".

This module adds that causal layer:

* **Trace ids.**  Every :class:`~repro.core.envelope.Envelope` gets a
  cheap monotonic per-kernel trace id the first time it enters a traced
  publish path.  The simulation moves envelope *objects* end to end, so
  the id (and the running causal parent) survives every hop for free.
* **Spans.**  Each hop records a :class:`Span` — ``(trace, parent, hop,
  start, end, attrs)`` — through a pre-bound :class:`HopHandle`, so the
  hot path pays one attribute check, one append and one histogram
  observation, with no registry lookups.
* **Flight recorder.**  Spans live in a bounded ring
  (:class:`SpanRecorder`): week-long simulations keep the most recent
  window and count what they dropped instead of growing without limit.
* **Energy ledger.**  :class:`EnergyLedger` watches the modem's RRC
  state machine, integrates the exact piecewise-constant energy of every
  radio episode (idle → ramp → … → idle) and prorates it over the
  messages whose flushes rode that episode — Table 3's marginal-energy
  accounting, at per-message granularity: a self-initiated flush is
  charged the full ramp + transfer + DCH/FACH tail; a piggybacked flush
  is charged only its marginal transfer time.

Everything here is deterministic: ids are per-recorder counters, times
are simulated milliseconds, and exports sort keys — two identical seeded
runs produce byte-identical span streams.  The kill switch is
``kernel.spans.disable()`` (or ``PogoSimulation(spans=False)``).
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .metrics import Histogram

#: Latency bucket bounds in milliseconds: from sub-event-loop hops (0 in
#: simulated time) up to the hour-scale fallback flush interval.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.0, 1.0, 10.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 5_000.0, 15_000.0, 60_000.0, 300_000.0,
    900_000.0, 3_600_000.0, 21_600_000.0, 86_400_000.0,
)

#: Default flight-recorder capacity.  ~56 bytes of slots plus an attrs
#: dict per span; 65536 spans keep the recorder in the tens of MB even
#: when every script call in a fleet simulation is traced.
DEFAULT_MAX_SPANS = 65_536


class Span:
    """One recorded hop of a message (or node) lifecycle."""

    __slots__ = ("span_id", "trace_id", "parent_id", "hop", "start_ms", "end_ms", "attrs")

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: int,
        hop: str,
        start_ms: float,
        end_ms: float,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.hop = hop
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-ready dict (attrs key-sorted for determinism)."""
        return {
            "span": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "hop": self.hop,
            "start_ms": round(self.start_ms, 3),
            "end_ms": round(self.end_ms, 3),
            "attrs": dict(sorted((self.attrs or {}).items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            int(data["span"]),
            int(data["trace"]),
            int(data["parent"]),
            str(data["hop"]),
            float(data["start_ms"]),
            float(data["end_ms"]),
            dict(data.get("attrs") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span #{self.span_id} {self.hop} trace={self.trace_id} "
            f"parent={self.parent_id} [{self.start_ms:.0f}..{self.end_ms:.0f}]>"
        )


class HopHandle:
    """A pre-bound recording handle for one hop kind.

    Components grab their handles once at construction
    (``kernel.spans.hop("buffer.dwell")``) so the per-message path is an
    enabled check, a counter bump, a ring append and one histogram
    observation — no name lookups, no branching on configuration.
    """

    __slots__ = ("_recorder", "name", "histogram")

    def __init__(self, recorder: "SpanRecorder", name: str, histogram: Histogram) -> None:
        self._recorder = recorder
        self.name = name
        self.histogram = histogram

    def record(
        self,
        trace_id: int,
        parent_id: int,
        start_ms: float,
        end_ms: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record one completed span; returns its id (0 when disabled)."""
        recorder = self._recorder
        if not recorder.enabled:
            return 0
        span_id = next(recorder._span_ids)
        recorder.recorded += 1
        recorder._ring.append(
            Span(span_id, trace_id, parent_id, self.name, start_ms, end_ms, attrs)
        )
        self.histogram.observe(end_ms - start_ms)
        return span_id


class NullHopHandle(HopHandle):
    """The disabled hop handle: ``record`` is a bare ``return 0``.

    ``disable()`` retargets every live handle to this class (the slot
    layout is identical, so ``__class__`` assignment is legal), which
    makes the disabled path a single method dispatch — no attribute
    chain, no flag branch — without invalidating the handles components
    pre-bound at construction.  ``enable()`` swaps them back.
    """

    __slots__ = ()

    def record(
        self,
        trace_id: int,
        parent_id: int,
        start_ms: float,
        end_ms: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        return 0


class SpanRecorder:
    """Bounded ring of causally-linked spans plus per-hop histograms.

    The ring keeps the most recent ``max_spans`` spans (the flight
    recorder); per-hop latency histograms aggregate over the *whole* run
    regardless of eviction, so long simulations still report complete
    latency distributions.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        enabled: bool = True,
    ) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self._clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self._ring: "deque[Span]" = deque(maxlen=max_spans)
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._hops: Dict[str, HopHandle] = {}
        #: Spans ever recorded (including those since evicted).
        self.recorded = 0
        #: Causal parent for synchronous call chains that cannot thread a
        #: span id through their signatures (flush → transport.send).
        #: Set/reset by the initiating component around the call.
        self.active_parent = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def disable(self) -> None:
        """Kill switch: every hop handle becomes a true no-op."""
        self.enabled = False
        for handle in self._hops.values():
            handle.__class__ = NullHopHandle

    def enable(self) -> None:
        self.enabled = True
        for handle in self._hops.values():
            handle.__class__ = HopHandle

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring so far."""
        return self.recorded - len(self._ring)

    def now(self) -> float:
        if self._clock is None:
            raise ValueError("no clock attached")
        return self._clock()

    # ------------------------------------------------------------------
    # Handles and trace ids
    # ------------------------------------------------------------------
    def hop(self, name: str) -> HopHandle:
        """Create-or-get the pre-bound handle for one hop kind."""
        handle = self._hops.get(name)
        if handle is None:
            histogram = Histogram(f"hop.{name}", LATENCY_BUCKETS_MS)
            cls = HopHandle if self.enabled else NullHopHandle
            handle = self._hops[name] = cls(self, name, histogram)
        return handle

    def tag(self, envelope) -> int:
        """Assign (or return) the envelope's per-kernel trace id.

        Idempotent — a message forwarded hop to hop keeps the id it was
        given at its first traced publish.  Returns 0 when disabled so
        untraced runs never consume ids (determinism across toggles).
        """
        trace_id = envelope.trace_id
        if trace_id:
            return trace_id
        if not self.enabled:
            return 0
        trace_id = next(self._trace_ids)
        envelope.trace_id = trace_id
        return trace_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self, hop: Optional[str] = None, trace_id: Optional[int] = None) -> List[Span]:
        """Spans still in the ring, oldest first, optionally filtered."""
        return [
            span
            for span in self._ring
            if (hop is None or span.hop == hop)
            and (trace_id is None or span.trace_id == trace_id)
        ]

    def trace_ids(self) -> List[int]:
        """Distinct message trace ids still represented in the ring."""
        seen = sorted({span.trace_id for span in self._ring if span.trace_id})
        return seen

    def hop_names(self) -> List[str]:
        return sorted(self._hops)

    def hop_histogram(self, name: str) -> Histogram:
        return self.hop(name).histogram

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def latency_table(self) -> str:
        """Per-hop latency summary (deterministic ordering)."""
        lines = [
            f"{'hop':<24} {'count':>9} {'mean ms':>12} {'min ms':>10} {'max ms':>12}"
        ]
        for name in self.hop_names():
            histogram = self._hops[name].histogram
            if histogram.count == 0:
                continue
            lines.append(
                f"{name:<24} {histogram.count:>9,} {histogram.mean:>12,.1f} "
                f"{histogram.min:>10,.1f} {histogram.max:>12,.1f}"
            )
        return "\n".join(lines)

    def latency_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Machine-readable per-hop latency summary."""
        out: Dict[str, Dict[str, float]] = {}
        for name in self.hop_names():
            histogram = self._hops[name].histogram
            if histogram.count == 0:
                continue
            out[name] = {
                "count": histogram.count,
                "mean_ms": round(histogram.mean, 3),
                "min_ms": histogram.min,
                "max_ms": histogram.max,
            }
        return out

    def latency_digest(self) -> Dict[str, Dict[str, float]]:
        """Additive per-hop digest: count / sum / min / max, no mean.

        The telemetry plane ships this at every epoch barrier.  Counts
        and sums combine across shards by plain addition (mins/maxes by
        min/max), so the fleet aggregator can merge K digests without
        recomputing anything from raw spans.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in self.hop_names():
            histogram = self._hops[name].histogram
            if histogram.count == 0:
                continue
            out[name] = {
                "count": histogram.count,
                "sum_ms": round(histogram.total, 3),
                "min_ms": histogram.min,
                "max_ms": histogram.max,
            }
        return out


def span_tree(spans: Iterable[Span], trace_id: int) -> List[Tuple[int, Span]]:
    """(depth, span) rows for one trace, parents before children.

    Spans whose parent is missing (evicted from the ring, or node-scoped)
    appear as roots.  Ordering is by span id within each depth — the
    deterministic causal order.
    """
    mine = sorted(
        (span for span in spans if span.trace_id == trace_id),
        key=lambda span: span.span_id,
    )
    by_parent: Dict[int, List[Span]] = {}
    ids = {span.span_id for span in mine}
    roots: List[Span] = []
    for span in mine:
        if span.parent_id in ids:
            by_parent.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    rows: List[Tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        rows.append((depth, span))
        for child in by_parent.get(span.span_id, []):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return rows


def render_span_tree(spans: Iterable[Span], trace_id: int) -> str:
    """ASCII span tree for one message's lifecycle."""
    rows = span_tree(spans, trace_id)
    if not rows:
        return f"trace #{trace_id}: no spans in the flight recorder"
    origin = rows[0][1].start_ms
    lines = [f"trace #{trace_id} (t0 = {origin:.0f} ms)"]
    for depth, span in rows:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted((span.attrs or {}).items())
        )
        lines.append(
            f"  {'  ' * depth}{span.hop:<20} +{span.start_ms - origin:>10.0f} ms"
            f"  ({span.duration_ms:>8.0f} ms){('  ' + attrs) if attrs else ''}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Energy attribution
# ---------------------------------------------------------------------------


class RadioEpisode:
    """One radio-active episode: idle → ramp → (DCH/FACH)* → idle.

    Accumulates the exact energy of each RRC state visited (power is
    piecewise constant, so duration × watts is the true integral) and the
    list of flush "riders" — (flush span, trace id, bytes) triples — to
    prorate over when the episode closes.
    """

    __slots__ = ("index", "start_ms", "end_ms", "trigger", "energy_j", "state_ms", "riders")

    def __init__(self, index: int, start_ms: float, trigger: str) -> None:
        self.index = index
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        #: "flush" when Pogo's own flush woke the radio; "external" when
        #: another app (or the connection handshake) did and Pogo at most
        #: piggybacked.
        self.trigger = trigger
        self.energy_j = 0.0
        self.state_ms: Dict[str, float] = {}
        self.riders: List[Tuple[int, int, int]] = []

    def add_dwell(self, state: str, duration_ms: float, watts: float) -> None:
        self.energy_j += watts * duration_ms / 1000.0
        self.state_ms[state] = self.state_ms.get(state, 0.0) + duration_ms

    @property
    def pogo_bytes(self) -> int:
        return sum(size for _, _, size in self.riders)


class MessageEnergy:
    """Per-message attribution result kept in the ledger's recent ring."""

    __slots__ = ("trace_id", "flush_span", "episode", "bytes", "joules", "piggybacked")

    def __init__(self, trace_id: int, flush_span: int, episode: int,
                 size: int, joules: float, piggybacked: bool) -> None:
        self.trace_id = trace_id
        self.flush_span = flush_span
        self.episode = episode
        self.bytes = size
        self.joules = joules
        self.piggybacked = piggybacked

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_id,
            "flush_span": self.flush_span,
            "episode": self.episode,
            "bytes": self.bytes,
            "joules": round(self.joules, 9),
            "piggybacked": self.piggybacked,
        }


#: Per-message energy bucket bounds in joules.
ENERGY_BUCKETS_J: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0,
)


class EnergyLedger:
    """Per-device modem energy accounting with per-message attribution.

    Listens to the modem's RRC transitions and reproduces Table 3's
    marginal accounting at message granularity:

    * an episode **triggered by a Pogo flush** is charged to Pogo in
      full — ramp, transfer, DCH tail and FACH tail — prorated across
      the traced messages that rode it by wire bytes;
    * an episode **triggered externally** (the e-mail app, a push, the
      handshake) charges piggybacked Pogo messages only their marginal
      transfer energy (transfer time at DCH power); the ramp and tail
      belong to whoever woke the radio — that is the entire point of
      tail synchronization.

    Energy never goes missing: ``attributed_j + control_j +
    unattributed_j`` equals the integrated energy of all closed episodes
    exactly, and ``+ idle_j`` equals the modem's total — the ledger's
    reconciliation invariant (the CLI prints the delta; tests pin it).
    """

    def __init__(self, kernel, modem, recent_messages: int = 4096) -> None:
        self.kernel = kernel
        self.modem = modem
        profile = modem.profile
        self._watts = {
            "idle": profile.idle_w,
            "ramp": profile.ramp_w,
            "dch": profile.dch_w,
            "fach": profile.fach_w,
            "off": 0.0,
        }
        self._state = modem.state
        self._since = kernel.now
        self._episode: Optional[RadioEpisode] = None
        self._episode_ids = itertools.count(1)
        self._pending_flush_trigger = False

        self.episodes_closed = 0
        self.episodes_by_trigger: Dict[str, int] = {"flush": 0, "external": 0}
        #: Energy attributed to traced messages / untraced control payloads
        #: / non-Pogo radio use, plus the idle baseline.
        self.attributed_j = 0.0
        self.control_j = 0.0
        self.unattributed_j = 0.0
        self.idle_j = 0.0
        self.messages_attributed = 0
        self.piggybacked_messages = 0
        self.message_energy = Histogram("message_energy_j", ENERGY_BUCKETS_J)
        self.recent: "deque[MessageEnergy]" = deque(maxlen=recent_messages)
        #: Pogo bytes that rode Wi-Fi flushes (no modem tail to attribute).
        self.wifi_bytes = 0

        modem.on_state_change.append(self._on_state_change)

    # ------------------------------------------------------------------
    # Flush notifications (from DeviceNode.flush)
    # ------------------------------------------------------------------
    def on_flush(
        self,
        flush_span: int,
        riders: List[Tuple[int, int]],
        interface: Optional[str],
        radio_state: str,
    ) -> None:
        """Register a flush's messages as riders of the radio episode.

        ``riders`` is (trace_id, bytes) per payload; trace id 0 marks
        control traffic (sub ops, acks) that rides but is not a traced
        message.  Called *before* the physical sends, so a flush from
        idle sets the trigger marker the episode-open transition reads
        within the same kernel instant.
        """
        if interface == "wifi":
            self.wifi_bytes += sum(size for _, size in riders)
            return
        triples = [(flush_span, trace_id, size) for trace_id, size in riders]
        if self._episode is not None:
            self._episode.riders.extend(triples)
        else:
            # Radio is idle: our own transfer will open the episode in
            # this same instant.  Mark the trigger and park the riders.
            self._pending_flush_trigger = True
            self._parked_riders = getattr(self, "_parked_riders", [])
            self._parked_riders.extend(triples)

    def settle_flush(self) -> None:
        """Drop a stale self-flush marker after the flush's sends ran.

        Normally a flush from idle ramps the radio synchronously inside
        the send and the episode-open transition consumes the marker; if
        the transfer never reached the modem (transport failure) the
        marker and parked riders must not leak into a later, unrelated
        episode.
        """
        if self._episode is None and self._pending_flush_trigger:
            self._pending_flush_trigger = False
            parked = getattr(self, "_parked_riders", None)
            if parked:
                parked.clear()

    # ------------------------------------------------------------------
    # RRC state machine listener
    # ------------------------------------------------------------------
    def _on_state_change(self, old: str, new: str) -> None:
        now = self.kernel.now
        self._account_dwell(old, now)
        self._state = new
        self._since = now
        if old in ("idle", "off") and new == "ramp":
            trigger = "flush" if self._pending_flush_trigger else "external"
            self._pending_flush_trigger = False
            self._episode = RadioEpisode(next(self._episode_ids), now, trigger)
            parked = getattr(self, "_parked_riders", None)
            if parked:
                self._episode.riders.extend(parked)
                parked.clear()
        elif new in ("idle", "off") and self._episode is not None:
            self._close_episode(now)

    def _account_dwell(self, state: str, now: float) -> None:
        duration = now - self._since
        if duration <= 0:
            return
        if self._episode is not None:
            self._episode.add_dwell(state, duration, self._watts.get(state, 0.0))
        else:
            self.idle_j += self._watts.get(state, 0.0) * duration / 1000.0

    def _close_episode(self, now: float) -> None:
        episode = self._episode
        self._episode = None
        episode.end_ms = now
        self.episodes_closed += 1
        self.episodes_by_trigger[episode.trigger] = (
            self.episodes_by_trigger.get(episode.trigger, 0) + 1
        )
        self._attribute(episode)

    # ------------------------------------------------------------------
    # Attribution math
    # ------------------------------------------------------------------
    def _transfer_energy_j(self, size: int) -> float:
        """Marginal cost of sending ``size`` bytes in an already-hot
        episode: the transfer duration at DCH power."""
        profile = self.modem.profile
        duration_ms = max(
            profile.min_transfer_ms, size / profile.uplink_bytes_per_s * 1000.0
        )
        return profile.dch_w * duration_ms / 1000.0

    def _attribute(self, episode: RadioEpisode) -> None:
        total = episode.energy_j
        if not episode.riders:
            self.unattributed_j += total
            return
        if episode.trigger == "flush":
            # Pogo woke the radio: it owns the whole episode — ramp,
            # transfer, and both tails (what Table 3's "Without
            # synchronization" column pays per transmission).
            pogo_share = total
            piggybacked = False
        else:
            # Piggybacked: charge only the marginal transfer energy, one
            # transfer estimate per flush that rode (a flush's payloads
            # coalesce into one batch transfer).  Capped by the episode.
            by_flush: Dict[int, int] = {}
            for flush_span, _, size in episode.riders:
                by_flush[flush_span] = by_flush.get(flush_span, 0) + size
            pogo_share = min(
                total, sum(self._transfer_energy_j(size) for size in by_flush.values())
            )
            piggybacked = True
        self.unattributed_j += total - pogo_share

        rider_bytes = episode.pogo_bytes
        for flush_span, trace_id, size in episode.riders:
            share = pogo_share * (size / rider_bytes) if rider_bytes else 0.0
            if trace_id:
                self.attributed_j += share
                self.messages_attributed += 1
                if piggybacked:
                    self.piggybacked_messages += 1
                self.message_energy.observe(share)
                self.recent.append(
                    MessageEnergy(trace_id, flush_span, episode.index, size, share, piggybacked)
                )
            else:
                self.control_j += share

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Account the dwell up to 'now' and close any open episode so
        end-of-run reports include the in-flight tail."""
        now = self.kernel.now
        self._account_dwell(self._state, now)
        self._since = now
        if self._episode is not None:
            self._close_episode(now)

    @property
    def active_j(self) -> float:
        """Energy of all closed episodes (everything except idle)."""
        return self.attributed_j + self.control_j + self.unattributed_j

    @property
    def total_j(self) -> float:
        return self.active_j + self.idle_j

    def reconciliation_delta(self) -> float:
        """|attributed + control + unattributed − Σ episode energy| as a
        fraction of the active total.  Zero up to float error; the
        acceptance bound is 1%."""
        episode_total = self.active_j
        parts = self.attributed_j + self.control_j + self.unattributed_j
        if episode_total <= 0.0:
            return 0.0
        return abs(parts - episode_total) / episode_total

    def snapshot(self) -> Dict[str, Any]:
        return {
            "episodes": self.episodes_closed,
            "episodes_flush_triggered": self.episodes_by_trigger.get("flush", 0),
            "episodes_external": self.episodes_by_trigger.get("external", 0),
            "attributed_j": round(self.attributed_j, 6),
            "control_j": round(self.control_j, 6),
            "unattributed_j": round(self.unattributed_j, 6),
            "idle_j": round(self.idle_j, 6),
            "active_j": round(self.active_j, 6),
            "total_j": round(self.total_j, 6),
            "messages_attributed": self.messages_attributed,
            "piggybacked_messages": self.piggybacked_messages,
            "mean_message_j": round(self.message_energy.mean, 9),
            "max_message_j": round(self.message_energy.max or 0.0, 9),
            "wifi_bytes": self.wifi_bytes,
        }


def spans_to_jsonl_lines(spans: Iterable[Span]) -> List[str]:
    """One compact, key-stable JSON document per span (deterministic)."""
    return [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
