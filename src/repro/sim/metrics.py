"""A lightweight metrics plane for the simulation kernel.

The evaluation (Tables 3/4) hinges on cheap per-message accounting, and
the ROADMAP's fleet-scale goal needs the hot path observable without
slowing it down.  This module provides process-local counters,
histograms and pull-gauges that the broker, buffer, transport, tail-sync
and script watchdog increment, all hanging off ``kernel.metrics`` so a
simulation's numbers never leak into another's (the determinism rule:
no process-global state).

Design constraints:

* **Cheap increments.**  ``Counter.inc`` is one attribute add;
  components pre-bind the counter object at construction so the hot path
  never does a dict lookup.
* **Deterministic reports.**  ``snapshot()``/``report()`` sort by metric
  name, so two identical simulations render byte-identical reports.
* **Trace bridge.**  ``record_snapshot`` writes the full snapshot as one
  :class:`~repro.sim.trace.TraceRecorder` event, letting tests and the
  timeline tooling correlate metric values with protocol events.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (bytes-ish scale; also fine for
#: batch sizes).  A final implicit +inf bucket catches the rest.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Bucketed value distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[str, int]]:
        """(upper-bound label, count) pairs, including the +inf bucket."""
        labels = [f"<= {bound:g}" for bound in self.bounds] + ["> last"]
        return list(zip(labels, self.bucket_counts))


class NullCounter(Counter):
    """Disabled counter: ``inc`` is a bare return.

    ``MetricsRegistry.disable()`` retargets every live counter to this
    class (identical slot layout, so ``__class__`` assignment is legal)
    rather than inserting a flag branch into every increment — the
    pre-bound counter objects components hold stay valid, and the
    disabled hot path pays one no-op method dispatch.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class NullHistogram(Histogram):
    """Disabled histogram: ``observe`` is a bare return."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


class MetricsRegistry:
    """Create-or-get registry of counters, histograms and gauges."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    def disable(self) -> None:
        """Kill switch: every counter/histogram becomes a true no-op.

        Values accumulated so far stay readable (snapshots report the
        frozen state); only further increments are dropped.
        """
        self.enabled = False
        for counter in self._counters.values():
            counter.__class__ = NullCounter
        for histogram in self._histograms.values():
            histogram.__class__ = NullHistogram

    def enable(self) -> None:
        self.enabled = True
        for counter in self._counters.values():
            counter.__class__ = Counter
        for histogram in self._histograms.values():
            histogram.__class__ = Histogram

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            cls = Counter if self.enabled else NullCounter
            counter = self._counters[name] = cls(name)
        return counter

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            cls = Histogram if self.enabled else NullHistogram
            histogram = self._histograms[name] = cls(name, bounds)
        return histogram

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-gauge: sampled only at snapshot time, so the
        producer's hot loop (e.g. the kernel's event loop) pays nothing."""
        self._gauges[name] = fn

    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, int]:
        """Counter values only, sorted by name.

        This is the *additive* slice of the plane: counters partition
        exactly across fleet shards (each increment happens on exactly
        one shard), so the telemetry timeline sums them into fleet
        totals that match the solo run.  Gauges (heap depth, tombstone
        count) and histograms are deliberately excluded — deterministic,
        but not meaningfully summable.
        """
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def snapshot(self) -> Dict[str, Any]:
        """All current values, keyed by metric name, sorted."""
        out: Dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name]()
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            out[name] = {
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.min,
                "max": histogram.max,
                "mean": round(histogram.mean, 3),
            }
        return out

    def nonzero(self) -> Dict[str, Any]:
        """Snapshot restricted to metrics that have actually moved."""
        def moved(value: Any) -> bool:
            if isinstance(value, dict):
                return value.get("count", 0) > 0
            return bool(value)

        return {name: value for name, value in self.snapshot().items() if moved(value)}

    def report(self, include_zero: bool = False) -> str:
        """Administrator-facing text report (deterministic ordering)."""
        lines = [f"{'metric':<32} {'value':>14}"]
        values = self.snapshot() if include_zero else self.nonzero()
        for name, value in values.items():
            if isinstance(value, dict):
                lines.append(
                    f"{name:<32} {value['count']:>14,}  "
                    f"(sum={value['sum']:,.0f} mean={value['mean']:,.1f} "
                    f"min={value['min'] if value['min'] is not None else '-'} "
                    f"max={value['max'] if value['max'] is not None else '-'})"
                )
            elif isinstance(value, float) and not value.is_integer():
                lines.append(f"{name:<32} {value:>14,.3f}")
            else:
                lines.append(f"{name:<32} {int(value):>14,}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Trace bridge
    # ------------------------------------------------------------------
    def record_snapshot(self, trace, source: str = "metrics", time: Optional[float] = None) -> None:
        """Write the current snapshot as one trace event."""
        trace.record(source, "snapshot", time=time, **self.snapshot())
