"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator and advances it on the kernel.
The generator models a sequential activity (a background app's loop, a
user's day) and communicates with the kernel by *yielding*:

* a ``float``/``int`` — sleep that many simulated milliseconds;
* a :class:`Signal` — block until the signal fires; the signal payload is
  delivered as the value of the ``yield`` expression.

Processes are cooperatively scheduled; each resume runs inside a single
kernel event.  This is the moral equivalent of the paper's thread pool
(Section 4.5): components "do not have to maintain their own threads".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from .kernel import EventHandle, Kernel, SimulationError

ProcessGenerator = Generator[Any, Any, None]


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every current waiter exactly once; waiters that
    arrive afterwards wait for the next firing.

    Implementation: waiters live in an insertion-ordered dict keyed by
    callback (registration and removal are both O(1) — the old list did
    an O(n) scan per ``remove_waiter``), stamped with the signal's
    current *epoch*.  ``fire`` advances the epoch, detaches the whole
    waiter set and wakes it with **one** kernel event that calls the
    batch in FIFO registration order — scheduling cost per firing is
    O(1) instead of one heap push per waiter, and waiters registered by
    a callback in the batch belong to the new epoch, so they wait for
    the next firing exactly as before.  A callback registered twice in
    one epoch wakes once per firing.
    """

    def __init__(self, kernel: Kernel, name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        #: callback -> epoch it registered in (dict preserves FIFO order).
        self._waiters: Dict[Callable[[Any], None], int] = {}
        self.fire_count = 0
        self.epoch = 0

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register a one-shot callback for the next firing."""
        self._waiters[callback] = self.epoch

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        self._waiters.pop(callback, None)

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters in one kernel event.  Returns count."""
        waiters = self._waiters
        self._waiters = {}
        self.epoch += 1
        self.fire_count += 1
        if waiters:
            self._kernel.schedule(0.0, self._wake_batch, list(waiters), payload)
        return len(waiters)

    def _wake_batch(self, callbacks: List[Callable[[Any], None]], payload: Any) -> None:
        for callback in callbacks:
            callback(payload)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Process:
    """Run a generator as a cooperative simulation process."""

    def __init__(self, kernel: Kernel, generator: ProcessGenerator, name: str = "") -> None:
        self._kernel = kernel
        self._generator = generator
        self.name = name
        self.finished = False
        self.failed: Optional[BaseException] = None
        self._pending: Optional[EventHandle] = None
        self._started = False

    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first resume.  Returns ``self`` for chaining."""
        if self._started:
            raise SimulationError(f"process {self.name!r} already started")
        self._started = True
        self._pending = self._kernel.schedule(delay, self._resume, None)
        return self

    def stop(self) -> None:
        """Cancel the process; it will not be resumed again."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if not self.finished:
            self.finished = True
            self._generator.close()

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        self._pending = None
        try:
            # send(None) on a fresh generator is equivalent to next(); the
            # same code path therefore starts and resumes the process.
            yielded = self._generator.send(value)
        except StopIteration:
            self.finished = True
            return
        except BaseException as exc:  # record, then propagate to the kernel
            self.finished = True
            self.failed = exc
            raise
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            yielded = 0.0
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay")
            self._pending = self._kernel.schedule(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            yielded.wait(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay in ms or a Signal"
            )


def spawn(kernel: Kernel, generator: ProcessGenerator, name: str = "", delay: float = 0.0) -> Process:
    """Create and start a :class:`Process` in one call."""
    return Process(kernel, generator, name=name).start(delay)
