"""Named, seeded random streams.

Every stochastic component in the simulation (mobility, RSSI noise,
connectivity churn, background-app jitter, ...) draws from its own named
stream derived from a single experiment seed.  This gives two properties
the evaluation needs:

* **Reproducibility** — the same seed regenerates an entire experiment,
  including Table 4's 24-day localization deployment, bit-for-bit.
* **Isolation** — adding a new consumer of randomness does not perturb the
  draws seen by existing components, because streams are keyed by name
  rather than by global draw order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that child seeds are well distributed even for
    adjacent root seeds and similar names.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of independent :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> streams.stream("mobility/user1").random()  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Create an independent child registry (e.g. one per user)."""
        return RandomStreams(derive_seed(self.seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
