"""Named, seeded random streams.

Every stochastic component in the simulation (mobility, RSSI noise,
connectivity churn, background-app jitter, ...) draws from its own named
stream derived from a single experiment seed.  This gives two properties
the evaluation needs:

* **Reproducibility** — the same seed regenerates an entire experiment,
  including Table 4's 24-day localization deployment, bit-for-bit.
* **Isolation** — adding a new consumer of randomness does not perturb the
  draws seen by existing components, because streams are keyed by name
  rather than by global draw order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that child seeds are well distributed even for
    adjacent root seeds and similar names.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of independent :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> streams.stream("mobility/user1").random()  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Create an independent child registry (e.g. one per user)."""
        return RandomStreams(derive_seed(self.seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def as_random(source, name: str) -> random.Random:
    """Coerce ``source`` into a seeded, private :class:`random.Random`.

    Accepts a :class:`random.Random` instance (used as-is), a
    :class:`RandomStreams` registry (the ``name`` stream is drawn), or an
    ``int`` root seed (a stream derived with ``name`` — so two consumers
    given the same seed but different names stay independent).

    The *bare* :mod:`random` module — process-global, shared-order state
    that silently breaks bit-for-bit reproducibility — is rejected with a
    ``TypeError`` instead of being accepted as a duck-typed ``Random``.
    """
    if source is random:
        raise TypeError(
            "the global random module is not reproducible; pass a seeded "
            "random.Random, a RandomStreams, or an int seed"
        )
    if isinstance(source, random.Random):
        return source
    if isinstance(source, RandomStreams):
        return source.stream(name)
    if isinstance(source, int):
        return random.Random(derive_seed(source, name))
    raise TypeError(f"cannot derive a random stream from {type(source).__name__}")
