"""Discrete-event simulation substrate (kernel, processes, randomness, traces)."""

from .kernel import DAY, HOUR, MINUTE, SECOND, EventHandle, Kernel, SimulationError
from .metrics import Counter, Histogram, MetricsRegistry
from .process import Process, Signal, spawn
from .randomness import RandomStreams, as_random, derive_seed
from .spans import EnergyLedger, HopHandle, Span, SpanRecorder
from .trace import Interval, IntervalTrack, TimeSeries, TraceEvent, TraceRecorder

__all__ = [
    "DAY",
    "HOUR",
    "MINUTE",
    "SECOND",
    "EventHandle",
    "Kernel",
    "SimulationError",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Process",
    "Signal",
    "spawn",
    "RandomStreams",
    "as_random",
    "derive_seed",
    "EnergyLedger",
    "HopHandle",
    "Span",
    "SpanRecorder",
    "Interval",
    "IntervalTrack",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
]
