"""Discrete-event simulation kernel.

The kernel is the substrate everything else in this reproduction runs on.
The paper deployed Pogo on real Android phones; we do not have those, so
the phone hardware (CPU sleep states, the 3G modem, the battery) and the
passage of time are simulated.  The kernel provides:

* a simulated clock in **milliseconds** (`Kernel.now`),
* an event queue with stable FIFO ordering for simultaneous events,
* cancellable timers (`Kernel.schedule` returns a handle), and
* a run loop with optional horizon (`run_until`) and step limits.

Determinism: the kernel itself is fully deterministic.  All randomness in
the simulation goes through :mod:`repro.sim.randomness` so that a single
seed reproduces an entire experiment bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import SpanRecorder

#: Convenience time constants, all in milliseconds.
MILLISECOND = 1.0
SECOND = 1000.0
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR


class SimulationError(Exception):
    """Raised for kernel misuse (negative delays, running a stopped kernel)."""


class EventHandle:
    """Handle for a scheduled event; allows cancellation and inspection.

    Instances are returned by :meth:`Kernel.schedule` and
    :meth:`Kernel.schedule_at`.  They are single-shot: once the callback
    has run (or the event is cancelled) the handle is inert.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> bool:
        """Cancel the event.  Returns ``True`` if it had not yet fired."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        return True

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self.fired or self.cancelled)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<EventHandle t={self.time:.3f} {state} {self.callback!r}>"


class Kernel:
    """A minimal, fast discrete-event simulator.

    Typical use::

        kernel = Kernel()
        kernel.schedule(1000.0, lambda: print("one second in"))
        kernel.run()

    Events scheduled for the same time fire in scheduling order (FIFO),
    which keeps component interactions deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: Total number of events executed; useful in tests and benchmarks.
        self.events_executed = 0
        #: The kernel's metrics plane.  Components hang their counters and
        #: histograms here; the event count is exposed as a pull-gauge so
        #: the run loop itself pays nothing for observability.
        self.metrics = MetricsRegistry()
        self.metrics.gauge("kernel.events", lambda: self.events_executed)
        self.metrics.gauge("kernel.pending_events", lambda: self.pending_events)
        #: The kernel's flight recorder.  Components pre-bind hop handles
        #: (``kernel.spans.hop("buffer.dwell")``) at construction; the ring
        #: bounds memory and the gauges surface volume/eviction pressure.
        self.spans = SpanRecorder(clock=lambda: self._now)
        self.metrics.gauge("spans.recorded", lambda: self.spans.recorded)
        self.metrics.gauge("spans.dropped", lambda: self.spans.dropped)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fired = True
            self.events_executed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
            self._stopped = False
        return executed

    def run_until(self, time: float) -> int:
        """Run all events up to and including ``time``; clock ends at ``time``.

        Components with periodic behaviour keep the queue non-empty, so
        ``run_until`` is the normal way to run a phone simulation for a
        fixed duration.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards: {time} < {self._now}")
        executed = 0
        self._running = True
        try:
            while not self._stopped and self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.time > time:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
            self._stopped = False
        self._now = max(self._now, time)
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run` / :meth:`run_until` to exit."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when idle."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None
