"""Discrete-event simulation kernel.

The kernel is the substrate everything else in this reproduction runs on.
The paper deployed Pogo on real Android phones; we do not have those, so
the phone hardware (CPU sleep states, the 3G modem, the battery) and the
passage of time are simulated.  The kernel provides:

* a simulated clock in **milliseconds** (`Kernel.now`),
* an event queue with stable FIFO ordering for simultaneous events,
* cancellable timers (`Kernel.schedule` returns a handle),
* repeating timers that re-arm in place (`Kernel.schedule_repeating`),
  and a `rearm` primitive that recycles a fired handle's storage, and
* a run loop with optional horizon (`run_until`) and step limits.

Hot-path design (the fleet-scale requirements):

* The heap holds ``(time, seq, handle)`` tuples, so ordering is decided
  by C-level tuple comparison — no Python ``__lt__`` calls per sift.
* Cancellation is lazy (the heap entry becomes a tombstone), but the
  kernel keeps live/tombstone counters and compacts the heap in place
  once tombstones outnumber live events — cancel-heavy workloads (chaos
  campaigns, tail-sync timers) cannot grow the queue without bound.
* ``pending_events`` is O(1) and ``next_event_time`` is a heap peek
  (plus popping any tombstones that have surfaced).
* ``run`` / ``run_until`` are tight loops over local bindings; the stop
  flag is only consulted where it can actually change (after a
  callback), not re-read per queue operation.

Determinism: the kernel itself is fully deterministic.  All randomness in
the simulation goes through :mod:`repro.sim.randomness` so that a single
seed reproduces an entire experiment bit-for-bit.  Same-time events fire
in scheduling order (``seq``), and a repeating timer's re-arm consumes
its sequence number at the same point the equivalent re-scheduling
callback would have, so optimized and naive schedules interleave
identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import SpanRecorder

#: Convenience time constants, all in milliseconds.
MILLISECOND = 1.0
SECOND = 1000.0
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR

#: Compaction threshold: rebuild the heap when at least this many
#: tombstones have accumulated *and* they outnumber live events.  The
#: floor keeps small simulations from compacting constantly; the ratio
#: bounds queue memory at ~2x the live set for any cancellation pattern.
COMPACT_MIN_TOMBSTONES = 64


class SimulationError(Exception):
    """Raised for kernel misuse (negative delays, running a stopped kernel)."""


class EventHandle:
    """Handle for a scheduled event; allows cancellation and inspection.

    Instances are returned by :meth:`Kernel.schedule` and
    :meth:`Kernel.schedule_at`.  They are single-shot: once the callback
    has run (or the event is cancelled) the handle is inert — unless the
    owner recycles it with :meth:`Kernel.rearm`.  Handles created by
    :meth:`Kernel.schedule_repeating` carry an ``interval`` and are
    re-armed by the kernel itself, in place, before each callback.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "interval", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple,
        kernel: Optional["Kernel"] = None,
        interval: Optional[float] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.interval = interval
        self._kernel = kernel

    def cancel(self) -> bool:
        """Cancel the event.  Returns ``True`` if it had not yet fired."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None:
            kernel._note_cancel()
        return True

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self.fired or self.cancelled)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        kind = "repeating " if self.interval is not None else ""
        return f"<EventHandle {kind}t={self.time:.3f} {state} {self.callback!r}>"


class Kernel:
    """A minimal, fast discrete-event simulator.

    Typical use::

        kernel = Kernel()
        kernel.schedule(1000.0, lambda: print("one second in"))
        kernel.run()

    Events scheduled for the same time fire in scheduling order (FIFO),
    which keeps component interactions deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: Heap of (time, seq, handle).  Tuples compare in C; ``seq`` is
        #: unique so the handle itself is never compared.
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: Live (non-cancelled) entries in the queue, maintained by
        #: schedule/cancel/pop — pending_events reads it in O(1).
        self._live = 0
        #: Cancelled entries still occupying heap slots.
        self._tombstones = 0
        #: Heap compactions performed (observability for tests/bench).
        self.compactions = 0
        #: Total number of events executed; useful in tests and benchmarks.
        self.events_executed = 0
        #: The kernel's metrics plane.  Components hang their counters and
        #: histograms here; the event count is exposed as a pull-gauge so
        #: the run loop itself pays nothing for observability.
        self.metrics = MetricsRegistry()
        # Gauges are bound methods, not closures: every callable reachable
        # from the kernel graph must survive a pickle round-trip (the Shard
        # snapshot contract, see repro.core.shard).
        self.metrics.gauge("kernel.events", self._gauge_events)
        self.metrics.gauge("kernel.pending_events", self._gauge_pending)
        self.metrics.gauge("kernel.tombstones", self._gauge_tombstones)
        self.metrics.gauge("kernel.compactions", self._gauge_compactions)
        #: The kernel's flight recorder.  Components pre-bind hop handles
        #: (``kernel.spans.hop("buffer.dwell")``) at construction; the ring
        #: bounds memory and the gauges surface volume/eviction pressure.
        self.spans = SpanRecorder(clock=self.read_now)
        self.metrics.gauge("spans.recorded", self._gauge_spans_recorded)
        self.metrics.gauge("spans.dropped", self._gauge_spans_dropped)

    # ------------------------------------------------------------------
    # Pickle-safe gauge/clock callables
    # ------------------------------------------------------------------
    def read_now(self) -> float:
        """The clock as a picklable callable (for recorders and tracks)."""
        return self._now

    def _gauge_events(self) -> float:
        return self.events_executed

    def _gauge_pending(self) -> float:
        return self.pending_events

    def _gauge_tombstones(self) -> float:
        return self._tombstones

    def _gauge_compactions(self) -> float:
        return self.compactions

    def _gauge_spans_recorded(self) -> float:
        return self.spans.recorded

    def _gauge_spans_dropped(self) -> float:
        return self.spans.dropped

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        time = self._now + delay
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_repeating(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        initial_delay: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` every ``interval`` ms.

        The returned handle is re-armed *in place* by the run loop —
        no per-tick ``EventHandle`` or closure allocation — and re-arming
        is drift-free: the next deadline is ``fire_time + interval``, not
        ``now + interval``.  The re-arm happens immediately **before**
        the callback runs (consuming one sequence number), exactly where
        a re-scheduling closure would have consumed it, so converting a
        closure chain to a native repeating timer preserves same-instant
        FIFO order bit-for-bit.  Cancel via ``handle.cancel()``.
        """
        if interval <= 0:
            raise SimulationError(f"repeating interval must be positive: {interval!r}")
        first = interval if initial_delay is None else initial_delay
        if first < 0:
            raise SimulationError(f"negative delay: {first!r}")
        time = self._now + first
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self, interval=interval)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def rearm(self, handle: EventHandle, delay: float) -> EventHandle:
        """Recycle a *fired* handle: schedule it again ``delay`` ms out.

        Components with a permanent timer slot (the CPU's sleep check,
        alarm re-arms, the tail detector's poll timer) call this instead
        of allocating a fresh handle per cycle.  Only a handle that has
        fired and is no longer in the queue may be re-armed; re-arming a
        pending or cancelled handle would corrupt the queue's tombstone
        bookkeeping, so it raises.
        """
        if not handle.fired or handle.cancelled:
            raise SimulationError(f"can only rearm a fired handle: {handle!r}")
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        time = self._now + delay
        seq = next(self._seq)
        handle.time = time
        handle.seq = seq
        handle.fired = False
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by ``EventHandle.cancel`` for queued events."""
        self._live -= 1
        tombstones = self._tombstones + 1
        self._tombstones = tombstones
        if tombstones >= COMPACT_MIN_TOMBSTONES and tombstones > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify, in place.

        In-place (slice assignment) so run loops holding a local
        reference to the queue keep seeing the same list object.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._tombstones = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        queue = self._queue
        while queue:
            time, _, handle = heapq.heappop(queue)
            if handle.cancelled:
                self._tombstones -= 1
                continue
            self._now = time
            interval = handle.interval
            if interval is None:
                handle.fired = True
                self._live -= 1
            else:
                seq = next(self._seq)
                handle.time = time + interval
                handle.seq = seq
                heapq.heappush(queue, (handle.time, seq, handle))
            self.events_executed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        next_seq = self._seq.__next__
        try:
            if not self._stopped:
                while queue:
                    if max_events is not None and executed >= max_events:
                        break
                    time, _, handle = pop(queue)
                    if handle.cancelled:
                        self._tombstones -= 1
                        continue
                    self._now = time
                    interval = handle.interval
                    if interval is None:
                        handle.fired = True
                        self._live -= 1
                    else:
                        seq = next_seq()
                        handle.time = time + interval
                        handle.seq = seq
                        push(queue, (handle.time, seq, handle))
                    self.events_executed += 1
                    executed += 1
                    handle.callback(*handle.args)
                    # stop() can only be requested from inside a callback
                    # (or before the run), so this is the one place the
                    # flag needs re-reading.
                    if self._stopped:
                        break
        finally:
            self._running = False
            self._stopped = False
        return executed

    def run_until(self, time: float) -> int:
        """Run all events up to and including ``time``; clock ends at ``time``.

        Components with periodic behaviour keep the queue non-empty, so
        ``run_until`` is the normal way to run a phone simulation for a
        fixed duration.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards: {time} < {self._now}")
        executed = 0
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        next_seq = self._seq.__next__
        try:
            if not self._stopped:
                while queue:
                    event_time = queue[0][0]
                    if event_time > time:
                        break
                    _, _, handle = pop(queue)
                    if handle.cancelled:
                        self._tombstones -= 1
                        continue
                    self._now = event_time
                    interval = handle.interval
                    if interval is None:
                        handle.fired = True
                        self._live -= 1
                    else:
                        seq = next_seq()
                        handle.time = event_time + interval
                        handle.seq = seq
                        push(queue, (handle.time, seq, handle))
                    self.events_executed += 1
                    executed += 1
                    handle.callback(*handle.args)
                    if self._stopped:
                        break
        finally:
            self._running = False
            self._stopped = False
        if time > self._now:
            self._now = time
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run` / :meth:`run_until` to exit."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled tombstones excluded)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when idle."""
        queue = self._queue
        while queue:
            if queue[0][2].cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            return queue[0][0]
        return None
