"""Trace recording: events, activity intervals and sampled time series.

Three recorders cover everything the evaluation plots or tabulates:

* :class:`TraceRecorder` — a flat, queryable log of
  ``(time, source, kind, data)`` events.  Used for protocol-level
  assertions in tests ("the device reconnected after the interface
  switch") and to extract Figure 4's timeline.
* :class:`IntervalTrack` — open/close activity blocks (CPU awake, e-mail
  app active, Pogo active).  Figure 4 is three of these stacked.
* :class:`TimeSeries` — (time, value) samples, e.g. the rail power sampled
  by the simulated power meter for Figure 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only event log with simple filtering.

    With ``max_events`` set the log becomes a bounded ring: the most
    recent ``max_events`` events are kept, older ones are evicted and
    counted in :attr:`dropped` — so week-long simulations with tracing on
    cannot grow memory without limit.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive")
        self._clock = clock
        self.max_events = max_events
        self.events = deque(maxlen=max_events) if max_events is not None else []
        self.enabled = True
        #: Events ever recorded, including those since evicted.
        self.recorded = 0

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far (0 in unbounded mode)."""
        return self.recorded - len(self.events)

    def record(self, source: str, kind: str, time: Optional[float] = None, **data: Any) -> None:
        """Record an event.  ``time`` defaults to the attached clock."""
        if not self.enabled:
            return
        if time is None:
            if self._clock is None:
                raise ValueError("no clock attached and no explicit time given")
            time = self._clock()
        self.recorded += 1
        self.events.append(TraceEvent(time, source, kind, data))

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given source and/or kind."""
        return [
            event
            for event in self.events
            if (source is None or event.source == source)
            and (kind is None or event.kind == kind)
        ]

    def count(self, source: Optional[str] = None, kind: Optional[str] = None) -> int:
        return len(self.filter(source, kind))

    def last(self, source: Optional[str] = None, kind: Optional[str] = None) -> Optional[TraceEvent]:
        matches = self.filter(source, kind)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self.events.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


@dataclass(frozen=True)
class Interval:
    """A closed activity block ``[start, end]`` with an optional label."""

    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval", slack: float = 0.0) -> bool:
        """Whether the two intervals overlap, allowing ``slack`` ms of gap."""
        return self.start <= other.end + slack and other.start <= self.end + slack


class IntervalTrack:
    """Records open/close activity blocks for one component.

    Used to reconstruct Figure 4: the CPU, e-mail app and Pogo each own a
    track; the figure's claim is that every Pogo block overlaps an e-mail
    block (Pogo never transmits on its own).
    """

    def __init__(self, name: str, clock: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._clock = clock
        self.intervals: List[Interval] = []
        self._open_start: Optional[float] = None
        self._open_label: str = ""

    def _time(self, time: Optional[float]) -> float:
        if time is not None:
            return time
        if self._clock is None:
            raise ValueError("no clock attached and no explicit time given")
        return self._clock()

    def open(self, time: Optional[float] = None, label: str = "") -> None:
        """Start a block.  Re-opening an open block is a no-op."""
        if self._open_start is None:
            self._open_start = self._time(time)
            self._open_label = label

    def close(self, time: Optional[float] = None) -> Optional[Interval]:
        """End the current block and return it (``None`` if none open)."""
        if self._open_start is None:
            return None
        interval = Interval(self._open_start, self._time(time), self._open_label)
        self.intervals.append(interval)
        self._open_start = None
        self._open_label = ""
        return interval

    @property
    def is_open(self) -> bool:
        return self._open_start is not None

    def closed_intervals(self, until: Optional[float] = None) -> List[Interval]:
        """All intervals, force-closing any open block at ``until``."""
        result = list(self.intervals)
        if self._open_start is not None and until is not None:
            result.append(Interval(self._open_start, until, self._open_label))
        return result

    def total_duration(self, until: Optional[float] = None) -> float:
        return sum(interval.duration for interval in self.closed_intervals(until))


class TimeSeries:
    """(time, value) samples with integration and resampling helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("TimeSeries samples must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def integrate(self) -> float:
        """Trapezoidal integral of value over time.

        For a power series in watts with time in milliseconds this returns
        millijoule-seconds; callers convert units (see
        :mod:`repro.analysis.energy`).
        """
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += 0.5 * (self.values[i] + self.values[i - 1]) * dt
        return total

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t <= end``."""
        out = TimeSeries(self.name)
        for t, v in self:
            if start <= t <= end:
                out.append(t, v)
        return out

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0
