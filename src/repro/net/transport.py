"""Client transports: device (over phone radios) and wired (collector).

The device transport owns the behaviour Section 4.6 describes:

* it keeps a session open to the XMPP server over the phone's active
  interface;
* it "detects, using the Android API, when the active network interface
  changes and automatically reconnects on the new interface" — modelled
  via the phone's interface-change listener plus a reconnection delay
  (DNS + TCP + TLS + XMPP handshake) and a handshake transfer that costs
  real radio energy;
* sends/receives are physical transfers on the modem or Wi-Fi radio, so
  every stanza has an energy consequence, and receiving data wakes the
  CPU (which is also what lets the tail detector piggyback acks on
  incoming pushes).

The transport deliberately does *not* decide **when** to send: Pogo's
buffering and tail synchronization (``repro.core``) own that policy.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from ..sim.kernel import Kernel, SECOND
from ..core.messages import message_size_bytes
from .xmpp import Session, XmppServer


class TransportError(Exception):
    """Raised when a send is attempted with no usable connection."""


class _TransferDone:
    """Picklable completion callback for an outgoing stanza transfer.

    The transfer completes asynchronously (radio time) via the kernel's
    event queue, so this callback is part of the Shard snapshot graph —
    a nested closure here would make a mid-flight snapshot unpicklable.
    """

    __slots__ = (
        "transport", "to_jid", "stanza", "size", "session",
        "tracing", "parent", "start_ms", "interface", "on_complete",
    )

    def __init__(self, transport, to_jid, stanza, size, session,
                 tracing, parent, start_ms, interface, on_complete):
        self.transport = transport
        self.to_jid = to_jid
        self.stanza = stanza
        self.size = size
        self.session = session
        self.tracing = tracing
        self.parent = parent
        self.start_ms = start_ms
        self.interface = interface
        self.on_complete = on_complete

    def __call__(self, success: bool) -> None:
        t = self.transport
        spans = t._spans
        size = self.size
        if success and t.connected and t._session is self.session:
            t.stanzas_sent += 1
            t._m_stanzas.inc()
            t._m_bytes.inc(size)
            t._m_stanza_bytes.observe(size)
            route_parent = 0
            if self.tracing and spans.enabled:
                route_parent = t._h_send.record(
                    0,
                    self.parent,
                    self.start_ms,
                    t.kernel.now,
                    {"bytes": size, "interface": self.interface or "none", "ok": True},
                )
            t.server.submit(t.jid, self.to_jid, self.stanza, parent_span=route_parent)
        else:
            t.send_failures += 1
            t._m_failures.inc()
            success = False
            if self.tracing and spans.enabled:
                t._h_send.record(
                    0,
                    self.parent,
                    self.start_ms,
                    t.kernel.now,
                    {"bytes": size, "interface": self.interface or "none", "ok": False},
                )
        if self.on_complete is not None:
            self.on_complete(success)


class _RxDone:
    """Picklable completion callback for a downlink transfer."""

    __slots__ = ("transport", "complete")

    def __init__(self, transport, complete):
        self.transport = transport
        self.complete = complete

    def __call__(self, success: bool) -> None:
        if success:
            # Incoming data wakes the device, like an Android push.
            self.transport.phone.cpu.wake("push")
        self.complete(success)


class WiredTransport:
    """Collector-side client: a PC on a wired connection, always on."""

    def __init__(
        self,
        kernel: Kernel,
        server: XmppServer,
        jid: str,
        reconnect_delay_ms: float = 2 * SECOND,
    ) -> None:
        self.kernel = kernel
        self.server = server
        self.jid = jid
        self.reconnect_delay_ms = reconnect_delay_ms
        self.on_stanza: List[Callable[[str, dict], None]] = []
        self.on_connected: List[Callable[[], None]] = []
        self._session: Optional[Session] = None
        self._reconnecting = False
        self.stanzas_sent = 0
        self.reconnects = 0
        self._m_stanzas = kernel.metrics.counter("transport.stanzas_sent")
        server.register(jid)

    def start(self) -> None:
        self._session = self.server.connect(self.jid, self._deliver)
        for listener in list(self.on_connected):
            listener()

    @property
    def connected(self) -> bool:
        return self._session is not None and self._session.alive

    def notice_connection_lost(self) -> None:
        """The server reset the connection (restart): re-dial shortly.

        A wired client's reconnect loop is aggressive — there is no
        radio to spare — so the collector is back within seconds.
        """
        self._session = None
        if self._reconnecting:
            return
        self._reconnecting = True
        self.kernel.schedule(self.reconnect_delay_ms, self._reconnect)

    def _reconnect(self) -> None:
        self._reconnecting = False
        if self.connected:
            return
        self.reconnects += 1
        self.start()

    def send(self, to_jid: str, stanza: dict, on_complete: Optional[Callable[[bool], None]] = None) -> None:
        if not self.connected:
            raise TransportError(f"{self.jid}: not connected")
        self.stanzas_sent += 1
        self._m_stanzas.inc()
        self.server.submit(self.jid, to_jid, stanza)
        if on_complete is not None:
            self.kernel.schedule(0.0, on_complete, True)

    def _deliver(self, stanza: dict) -> None:
        from_jid = stanza.get("_from", "")
        for listener in list(self.on_stanza):
            listener(from_jid, stanza)


class DeviceTransport:
    """Phone-side client: connects over whatever interface is active."""

    def __init__(
        self,
        kernel: Kernel,
        server: XmppServer,
        jid: str,
        phone,
        reconnect_delay_ms: float = 4 * SECOND,
        retry_interval_ms: float = 30 * SECOND,
        handshake_tx_bytes: int = 1_500,
        handshake_rx_bytes: int = 3_000,
    ) -> None:
        self.kernel = kernel
        self.server = server
        self.jid = jid
        self.phone = phone
        self.reconnect_delay_ms = reconnect_delay_ms
        self.retry_interval_ms = retry_interval_ms
        self.handshake_tx_bytes = handshake_tx_bytes
        self.handshake_rx_bytes = handshake_rx_bytes

        self.on_stanza: List[Callable[[str, dict], None]] = []
        self.on_connected: List[Callable[[], None]] = []
        self._session: Optional[Session] = None
        self._session_interface: Optional[str] = None
        self._connecting = False
        self._started = False
        self.connect_count = 0
        self.send_failures = 0
        self.stanzas_sent = 0
        metrics = kernel.metrics
        self._m_stanzas = metrics.counter("transport.stanzas_sent")
        self._m_bytes = metrics.counter("transport.bytes_sent")
        self._m_failures = metrics.counter("transport.send_failures")
        self._m_stanza_bytes = metrics.histogram("transport.stanza_bytes")
        self._spans = kernel.spans
        self._h_send = kernel.spans.hop("transport.send")

        server.register(jid)
        phone.on_interface_change.append(self._interface_changed)
        phone.on_boot.append(self._on_boot)
        phone.on_shutdown.append(self._on_shutdown)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self._try_connect()

    @property
    def connected(self) -> bool:
        return (
            self._session is not None
            and self._session.alive
            and self.phone.alive
            and self.phone.active_interface() == self._session_interface
            and self._session_interface is not None
        )

    def _interface_changed(self, interface: Optional[str]) -> None:
        if not self._started:
            return
        # The old session is now stale; the server does not know yet —
        # that is the message-loss window.  Reconnect on the new
        # interface after the handshake delay.
        if interface is not None:
            self._schedule_connect(self.reconnect_delay_ms)

    def _on_boot(self) -> None:
        if self._started:
            self._schedule_connect(self.reconnect_delay_ms)

    def _on_shutdown(self) -> None:
        self._session = None
        self._session_interface = None

    def notice_connection_lost(self) -> None:
        """The far end reset the TCP connection (XMPP server restart).

        Android's connection manager surfaces the reset to the client,
        which re-dials after the usual handshake delay — the same path an
        interface change takes, minus the stale-session loss window
        (both ends already know the old session is gone).
        """
        if not self._started:
            return
        if self._session is not None:
            self._session.close()
            self._session = None
            self._session_interface = None
        self._schedule_connect(self.reconnect_delay_ms)

    def _schedule_connect(self, delay_ms: float) -> None:
        if self._connecting:
            return
        self._connecting = True
        self.kernel.schedule(delay_ms, self._try_connect_guarded)

    def _try_connect_guarded(self) -> None:
        self._connecting = False
        self._try_connect()

    def _try_connect(self) -> None:
        if self.connected or not self.phone.alive:
            return
        interface = self.phone.active_interface()
        if interface is None:
            return
        # The XMPP handshake is itself radio traffic.
        try:
            self.phone.transfer(
                tx_bytes=self.handshake_tx_bytes,
                rx_bytes=self.handshake_rx_bytes,
                duration_hint_ms=600.0,
                on_complete=partial(self._handshake_done, interface),
                label=f"{self.jid}:handshake",
            )
        except Exception:
            self._schedule_connect(self.retry_interval_ms)

    def _handshake_done(self, interface: str, success: bool) -> None:
        if not success or self.phone.active_interface() != interface:
            self._schedule_connect(self.retry_interval_ms)
            return
        self.connect_count += 1
        self._session_interface = interface
        self._session = self.server.connect(self.jid, self._deliver, self._physical_rx)
        for listener in list(self.on_connected):
            listener()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, to_jid: str, stanza: dict, on_complete: Optional[Callable[[bool], None]] = None) -> None:
        """Physically transmit a stanza; raises when disconnected."""
        if not self.connected:
            raise TransportError(f"{self.jid}: not connected")
        # Envelope payloads inside the stanza answer from their cached
        # canonical JSON, so this does not re-walk the message tree.
        size = message_size_bytes(stanza)
        session = self._session
        # The transfer completes asynchronously (radio time), so capture
        # the causal parent — the flush span, when this send is part of a
        # flush — and the start time here, at initiation.
        spans = self._spans
        tracing = spans.enabled
        parent = spans.active_parent if tracing else 0
        start_ms = self.kernel.now
        interface = self.phone.active_interface()

        transfer_done = _TransferDone(
            self, to_jid, stanza, size, session,
            tracing, parent, start_ms, interface, on_complete,
        )
        self.phone.transfer(
            tx_bytes=size,
            on_complete=transfer_done,
            label=f"{self.jid}:send",
        )

    def _physical_rx(self, size: int, complete: Callable[[bool], None]) -> None:
        """Server-side downlink into this device (installed per session)."""
        if (
            not self.phone.alive
            or self.phone.active_interface() != self._session_interface
        ):
            complete(False)
            return

        rx_done = _RxDone(self, complete)
        try:
            self.phone.transfer(rx_bytes=size, on_complete=rx_done, label=f"{self.jid}:recv")
        except Exception:
            complete(False)

    def _deliver(self, stanza: dict) -> None:
        from_jid = stanza.get("_from", "")
        for listener in list(self.on_stanza):
            listener(from_jid, stanza)
