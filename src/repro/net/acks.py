"""End-to-end acknowledgements over the XMPP switchboard.

Section 4.6: "This message loss problem is recognized in the XMPP
community and although several extensions have been proposed [XEP-184,
XEP-198], these have yet to be implemented in popular server and client
libraries.  ...  We have implemented our own end-to-end acknowledgements
on top of XMPP to recover from message loss."

:class:`ReliableLink` provides exactly-once, in-order delivery of
*envelopes* between one (sender, receiver) pair in each direction:

* every outgoing envelope carries a sequence number; the sender retains
  it until cumulatively acknowledged;
* the receiver delivers in order, buffers out-of-order arrivals, and
  acknowledges cumulatively (acks are requested from the owner via a
  callback so the device side can piggyback them on its next batch
  rather than paying a radio tail for a bare ack);
* on reconnect (or a resend timer) the sender retransmits everything
  unacknowledged;
* if the sender ever has to abandon unacked envelopes (the 24-hour
  expiry), it advances an explicit ``base`` so the receiver skips the
  gap instead of stalling forever.

A link optionally carries a :class:`LinkObserver` (``link.observer``):
a passive tap the chaos invariant monitor uses to verify, from the
*outside*, that the guarantees above actually hold under fault load —
exactly-once, in-order delivery, monotone cumulative acks, and
conservation of every sequence number ever transmitted.  The hot path
pays one ``is None`` check per event when no observer is attached.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.kernel import Kernel, MINUTE
from ..core.envelope import Stanza


def _no_ack_request() -> None:
    """Default ``request_ack_send``: do nothing (picklable, unlike a
    ``lambda: None`` — links live inside the Shard snapshot graph)."""
    return None


class LinkObserver:
    """Passive per-link tap for protocol verification (no-op base).

    All callbacks receive the link so one observer instance can watch
    many links.  Overrides must not mutate link state — the monitor is a
    read-only witness; perturbing the protocol would invalidate the very
    run it is checking.
    """

    def on_transmit(self, link: "ReliableLink", seq: int, payload: Any, retransmit: bool) -> None:
        pass

    def on_deliver(self, link: "ReliableLink", seq: int, payload: Any) -> None:
        pass

    def on_duplicate(self, link: "ReliableLink", seq: int) -> None:
        pass

    def on_gap_skip(self, link: "ReliableLink", old_expected: int, base: int) -> None:
        pass

    def on_abandon(self, link: "ReliableLink", seqs: List[int]) -> None:
        pass

    def on_ack_received(self, link: "ReliableLink", ack: int) -> None:
        pass

    def on_ack_emitted(self, link: "ReliableLink", ack: int) -> None:
        pass


class ReliableLink:
    """Sender+receiver state for one peer."""

    def __init__(
        self,
        kernel: Kernel,
        peer: str,
        send_raw: Callable[[dict], None],
        deliver: Callable[[Any], None],
        request_ack_send: Optional[Callable[[], None]] = None,
        resend_interval_ms: float = 5 * MINUTE,
    ) -> None:
        self.kernel = kernel
        self.peer = peer
        self._send_raw = send_raw
        self._deliver = deliver
        self._request_ack_send = request_ack_send or _no_ack_request
        self.resend_interval_ms = resend_interval_ms

        # Sender state.
        self._next_seq = 1
        self._base_seq = 1
        self._unacked: Dict[int, Any] = {}
        self._sent_at: Dict[int, float] = {}

        # Receiver state.
        self._expected = 1
        self._out_of_order: Dict[int, Any] = {}
        self._ack_dirty = False

        # Metrics.
        self.sent = 0
        self.resent = 0
        self.delivered = 0
        self.duplicates = 0
        self.abandoned = 0

        #: Optional protocol witness (see :class:`LinkObserver`).
        self.observer: Optional[LinkObserver] = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any) -> int:
        """Send a payload envelope; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = payload
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int, retransmit: bool = False) -> None:
        self.sent += 1
        self._sent_at[seq] = self.kernel.now
        if self.observer is not None:
            self.observer.on_transmit(self, seq, self._unacked[seq], retransmit)
        self._send_raw(self._envelope(seq))

    def _envelope(self, seq: int) -> dict:
        if self.observer is not None:
            # The piggybacked cumulative ack is an ack emission too.
            self.observer.on_ack_emitted(self, self._expected - 1)
        return Stanza(
            kind="env",
            seq=seq,
            base=self._base_seq,
            ack=self._expected - 1,
            payload=self._unacked[seq],
        )

    def resend_unacked(self, max_age_ms: Optional[float] = None) -> int:
        """Retransmit unacked envelopes (on reconnect / resend timer).

        With ``max_age_ms`` set, envelopes older than that are abandoned
        (the sender-side analogue of the 24-hour purge) and the base
        advances past them.
        """
        abandoned: List[int] = []
        if max_age_ms is not None:
            for seq, sent_at in list(self._sent_at.items()):
                if self.kernel.now - sent_at > max_age_ms:
                    abandoned.append(seq)
        for seq in abandoned:
            self._unacked.pop(seq, None)
            self._sent_at.pop(seq, None)
            self.abandoned += 1
        if abandoned:
            self._base_seq = max(self._base_seq, max(abandoned) + 1)
            if self.observer is not None:
                self.observer.on_abandon(self, sorted(abandoned))
        resent = 0
        for seq in sorted(self._unacked):
            # Only retransmit envelopes that have been out for a while;
            # a flush right after the original send shouldn't duplicate.
            if self.kernel.now - self._sent_at.get(seq, 0.0) >= min(
                self.resend_interval_ms, 30_000.0
            ):
                self._transmit(seq, retransmit=True)
                resent += 1
                self.resent += 1
        return resent

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_raw(self, stanza: dict) -> None:
        """Process an incoming stanza from the peer."""
        kind = stanza.get("kind")
        if kind == "env":
            self._on_envelope(stanza)
        elif kind == "ack":
            self._on_ack(int(stanza.get("ack", 0)))
        else:
            raise ValueError(f"unknown stanza kind: {kind!r}")

    def _on_envelope(self, stanza: dict) -> None:
        # Piggybacked ack for our own outgoing direction.
        self._on_ack(int(stanza.get("ack", 0)))
        seq = int(stanza["seq"])
        base = int(stanza.get("base", 1))
        if base > self._expected:
            # Sender abandoned a range; skip the gap.
            if self.observer is not None:
                self.observer.on_gap_skip(self, self._expected, base)
            for missing in list(self._out_of_order):
                if missing < base:
                    del self._out_of_order[missing]
            self._expected = base
        if seq < self._expected or seq in self._out_of_order:
            self.duplicates += 1
            if self.observer is not None:
                self.observer.on_duplicate(self, seq)
            self._ack_dirty = True
            self._request_ack_send()
            return
        self._out_of_order[seq] = stanza["payload"]
        while self._expected in self._out_of_order:
            payload = self._out_of_order.pop(self._expected)
            delivered_seq = self._expected
            self._expected += 1
            self.delivered += 1
            if self.observer is not None:
                self.observer.on_deliver(self, delivered_seq, payload)
            self._deliver(payload)
        self._ack_dirty = True
        self._request_ack_send()

    def _on_ack(self, ack: int) -> None:
        if self.observer is not None:
            self.observer.on_ack_received(self, ack)
        for seq in list(self._unacked):
            if seq <= ack:
                del self._unacked[seq]
                self._sent_at.pop(seq, None)

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    @property
    def ack_pending(self) -> bool:
        return self._ack_dirty

    def make_ack(self) -> Optional[dict]:
        """Produce a bare ack stanza if one is owed (else ``None``)."""
        if not self._ack_dirty:
            return None
        self._ack_dirty = False
        if self.observer is not None:
            self.observer.on_ack_emitted(self, self._expected - 1)
        return Stanza(kind="ack", ack=self._expected - 1)

    def current_ack(self) -> int:
        return self._expected - 1
