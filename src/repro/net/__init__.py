"""Network substrate: XMPP-like switchboard, transports, reliable delivery."""

from .xmpp import RoutingError, Session, XmppServer
from .transport import DeviceTransport, TransportError, WiredTransport
from .acks import ReliableLink

__all__ = [
    "RoutingError",
    "Session",
    "XmppServer",
    "DeviceTransport",
    "TransportError",
    "WiredTransport",
    "ReliableLink",
]
