"""An XMPP-style message switchboard with rosters and realistic loss.

Pogo uses an off-the-shelf instant-messaging server (Openfire) purely as a
"communications switchboard" between device and collector nodes (Sections
3.1 and 4.6).  The properties of XMPP that Pogo relies on — and the ones
it has to work around — are both reproduced here:

* **JIDs and rosters.**  Device↔collector associations are roster
  entries, managed by the testbed administrator.  The server refuses to
  route between parties that are not on each other's roster.
* **Offline storage.**  Stanzas for a JID with no session are queued and
  delivered on the next connect (standard XMPP behaviour).
* **Stale-session loss.**  "Mobile phones frequently switch between
  wireless interfaces ... causing stale TCP sessions and even dropped
  messages."  When a phone's interface goes away, the server keeps
  routing into the dead session until it notices (keepalive timeout) or
  the client reconnects; stanzas sent into that window are *lost*.  This
  is the loss mode Pogo's end-to-end acknowledgements exist to repair.

Physical delivery to a device costs radio energy: the server-side session
delegates to the phone's active interface, so pushes from the collector
drag the modem through ramp-ups and tails like any other traffic.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..sim.kernel import Kernel, SECOND
from ..sim.trace import TraceRecorder
from ..core.envelope import Stanza, _escape_str
from ..core.messages import message_size_bytes


class RoutingError(Exception):
    """Raised for routing without a roster association or unknown JIDs."""


class LinkInterceptor:
    """Interface for the chaos seam on :attr:`XmppServer.interceptor`.

    :meth:`intercept` is consulted once per submitted stanza and returns
    the *delivery plan*: a list of extra latencies (ms, on top of the
    server's base latency), one entry per copy to route.  ``[0.0]`` is
    the unimpaired path, ``[]`` drops the stanza, ``[0.0, 0.0]``
    duplicates it, and a large single entry holds it back so later
    traffic overtakes it (reordering).
    """

    def intercept(self, from_jid: str, to_jid: str, stanza: dict) -> List[float]:
        raise NotImplementedError


class Session:
    """One client's connection to the server.

    Session ids are per-server (cosmetic: trace labels only); nothing
    routes or branches on them.  Keeping the counter on the server —
    not at module level — is what makes two shards in one process, or
    one shard unpickled in another, produce identical traces.
    """

    def __init__(
        self,
        jid: str,
        deliver: Callable[[dict], None],
        physical_rx: Optional[Callable] = None,
        session_id: int = 0,
    ):
        self.id = session_id
        self.jid = jid
        #: Upcall into the client with a received stanza.
        self.deliver = deliver
        #: Optional physical receive hook: called with (size_bytes,
        #: on_complete) to model the radio cost of the downlink.  When the
        #: physical layer fails (dead interface) the stanza is lost.
        self.physical_rx = physical_rx
        self.alive = True

    def close(self) -> None:
        self.alive = False


class _DeliveryComplete:
    """Picklable physical-rx completion for one delivery attempt.

    The device's radio calls this back after the downlink transfer; it
    sits in the kernel's event queue mid-flight, so it must survive a
    Shard snapshot (a nested closure would not).
    """

    __slots__ = ("server", "session", "stanza", "route_ctx")

    def __init__(self, server, session, stanza, route_ctx):
        self.server = server
        self.session = session
        self.stanza = stanza
        self.route_ctx = route_ctx

    def __call__(self, success: bool) -> None:
        server = self.server
        session = self.session
        if success and session.alive:
            server._route_span(self.route_ctx, session.jid, "delivered")
            session.deliver(self.stanza)
        else:
            # Sent into a dead interface: the loss the paper observed.
            # The failed write also reveals the session is gone, so
            # subsequent stanzas go to offline storage instead.
            server._route_span(self.route_ctx, session.jid, "lost")
            server._lose(session, self.stanza)


class XmppServer:
    """The central switchboard."""

    def __init__(
        self,
        kernel: Kernel,
        latency_ms: float = 80.0,
        keepalive_timeout_ms: float = 60 * SECOND,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.kernel = kernel
        self.latency_ms = latency_ms
        self.keepalive_timeout_ms = keepalive_timeout_ms
        self.trace = trace
        self._accounts: Set[str] = set()
        self._rosters: Dict[str, Set[str]] = {}
        self._sessions: Dict[str, Session] = {}
        self._offline: Dict[str, Deque[dict]] = {}
        self._last_heard: Dict[str, float] = {}
        #: Chaos seam (repro.chaos).  When set, every submitted stanza asks
        #: the interceptor for its fate: a list of extra latencies, one per
        #: delivery attempt (empty = dropped, two entries = duplicated, a
        #: large entry = held back past later traffic, i.e. reordered).
        #: ``None`` keeps the plain single-delivery path with zero overhead.
        self.interceptor: Optional["LinkInterceptor"] = None
        #: Cross-shard seam.  When set, a stanza submitted for a JID this
        #: server does not host is handed to ``egress(from_jid, to_jid,
        #: stamped_stanza)`` instead of raising ``RoutingError``; the
        #: owning :class:`~repro.core.shard.Shard` queues it for the
        #: epoch barrier and the peer shard replays it via
        #: :meth:`ingress`.  ``None`` keeps the single-switchboard
        #: behaviour (unknown JIDs are an error).
        self.egress: Optional[Callable[[str, str, dict], None]] = None
        self._session_ids = itertools.count(1)
        #: Count of roster edges pointing at JIDs this server does not
        #: host (:meth:`add_remote_roster`).  The fleet coordinator reads
        #: it (via ``Shard.egress_capable``) as topology lookahead: zero
        #: remote edges means this shard cannot originate cross-shard
        #: traffic, so its local events never bound the barrier window.
        #: Conservatively monotone: registering a formerly-remote JID
        #: locally leaves stale (harmless) capability, never the reverse.
        self.remote_edges = 0
        self.stanzas_routed = 0
        self.stanzas_egressed = 0
        self.stanzas_lost = 0
        self.stanzas_stored_offline = 0
        self.restarts = 0
        metrics = kernel.metrics
        self._m_routed = metrics.counter("xmpp.stanzas_routed")
        self._m_lost = metrics.counter("xmpp.stanzas_lost")
        self._m_offline = metrics.counter("xmpp.stanzas_stored_offline")
        self._m_bytes = metrics.counter("xmpp.bytes_delivered")
        self._spans = kernel.spans
        self._h_route = kernel.spans.hop("xmpp.route")

    # ------------------------------------------------------------------
    # Accounts and rosters (the administrator's surface, Section 3.1)
    # ------------------------------------------------------------------
    def register(self, jid: str) -> None:
        self._accounts.add(jid)
        self._rosters.setdefault(jid, set())

    def registered(self, jid: str) -> bool:
        return jid in self._accounts

    def add_roster_pair(self, a: str, b: str) -> None:
        """Associate two JIDs (the admin assigning a device to a researcher)."""
        for jid in (a, b):
            if jid not in self._accounts:
                raise RoutingError(f"unknown JID: {jid}")
        self._rosters[a].add(b)
        self._rosters[b].add(a)

    def add_remote_roster(self, local_jid: str, remote_jid: str) -> None:
        """Roster edge to a JID another shard hosts (a federated assign).

        Only the local half of the pair is recorded — the remote server
        keeps the mirror edge.  Presence for ``local_jid`` then crosses
        the boundary through ``egress`` instead of being dropped.
        """
        if local_jid not in self._accounts:
            raise RoutingError(f"unknown JID: {local_jid}")
        if remote_jid in self._accounts:
            raise RoutingError(
                f"{remote_jid} is hosted on this server; use add_roster_pair"
            )
        if remote_jid not in self._rosters[local_jid]:
            self._rosters[local_jid].add(remote_jid)
            self.remote_edges += 1

    def remove_roster_pair(self, a: str, b: str) -> None:
        for jid, peer in ((a, b), (b, a)):
            roster = self._rosters.get(jid)
            if roster is not None and peer in roster:
                roster.discard(peer)
                if peer not in self._accounts:
                    self.remote_edges -= 1

    def roster(self, jid: str) -> Set[str]:
        return set(self._rosters.get(jid, set()))

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def connect(
        self,
        jid: str,
        deliver: Callable[[dict], None],
        physical_rx: Optional[Callable] = None,
    ) -> Session:
        """Open a session; replaces (and kills) any existing one."""
        if jid not in self._accounts:
            raise RoutingError(f"unknown JID: {jid}")
        old = self._sessions.get(jid)
        if old is not None:
            old.close()
        session = Session(jid, deliver, physical_rx, session_id=next(self._session_ids))
        self._sessions[jid] = session
        self._last_heard[jid] = self.kernel.now
        if self.trace is not None:
            self.trace.record("xmpp", "connect", jid=jid, session=session.id)
        self._drain_offline(jid, session)
        # XMPP presence: roster peers with live sessions learn that this
        # JID is (back) online.  Collectors use this to re-synchronize
        # subscription tables after a device reboot.
        for peer in self._rosters.get(jid, set()):
            peer_session = self._sessions.get(peer)
            if peer_session is not None and self._session_considered_alive(peer_session):
                self.kernel.schedule(
                    self.latency_ms,
                    self._deliver_via,
                    peer_session,
                    {"kind": "presence", "jid": jid, "available": True},
                )
            elif peer not in self._accounts and self.egress is not None:
                # A remote roster peer (add_remote_roster): presence
                # crosses the shard boundary and the owning server
                # replays it via presence_at.
                self.stanzas_egressed += 1
                self.egress(jid, peer, {"kind": "presence", "jid": jid, "available": True})
        return session

    def disconnect(self, session: Session) -> None:
        """Graceful disconnect: the server knows immediately."""
        session.close()
        if self._sessions.get(session.jid) is session:
            del self._sessions[session.jid]
        if self.trace is not None:
            self.trace.record("xmpp", "disconnect", jid=session.jid, session=session.id)

    def restart(self) -> List[str]:
        """Server process restart: every live TCP session dies at once.

        Clients observe a connection reset and must re-handshake (the
        chaos engine tells their transports via
        ``notice_connection_lost``).  Offline storage survives — Openfire
        keeps it in its database — so only stanzas in flight into the
        dead sessions are at risk, which is exactly the loss window the
        end-to-end acks repair.  Returns the JIDs that were connected.
        """
        jids = sorted(self._sessions)
        for session in list(self._sessions.values()):
            session.close()
        self._sessions.clear()
        self.restarts += 1
        if self.trace is not None:
            self.trace.record("xmpp", "restart", sessions=len(jids))
        return jids

    def session_of(self, jid: str) -> Optional[Session]:
        return self._sessions.get(jid)

    def note_heard_from(self, jid: str) -> None:
        """Any inbound traffic refreshes the liveness clock."""
        self._last_heard[jid] = self.kernel.now

    def _session_considered_alive(self, session: Session) -> bool:
        """Whether the server still believes this session works.

        An idle TCP connection stays up indefinitely; the server only
        learns a session is dead when a delivery into it fails (stale
        interface) or the client reconnects/disconnects.  Stanzas sent
        into a not-yet-detected-dead session are *lost* — the window the
        paper's end-to-end acks repair.
        """
        return session.alive

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def submit(self, from_jid: str, to_jid: str, stanza: dict, parent_span: int = 0) -> None:
        """Accept a stanza from ``from_jid`` for routing to ``to_jid``.

        ``parent_span`` is the sender's transport span; the routing span
        recorded at the outcome (delivered / offline / lost) hangs off it.
        """
        remote = to_jid not in self._accounts
        if remote and self.egress is None:
            raise RoutingError(f"unknown destination JID: {to_jid}")
        if not remote and to_jid not in self._rosters.get(from_jid, set()):
            raise RoutingError(f"{from_jid} and {to_jid} are not associated")
        self.note_heard_from(from_jid)
        # A Stanza copy keeps dict semantics but caches its canonical
        # JSON, so the switch and every delivery attempt of this stamped
        # stanza serialize it once total.  When the sender's transport
        # already serialized the unstamped stanza (sizing it for the
        # radio), the stamped text is derived by string surgery instead
        # of a re-walk: "_from" (0x5F) sorts before every all-lowercase
        # key, so it is always the first field of the canonical form.
        stamped = Stanza(stanza)
        dict.__setitem__(stamped, "_from", from_jid)
        cached = stanza._json if type(stanza) is Stanza else None
        if cached is not None and stanza:
            try:
                splice = min(stanza) > "_from"
            except TypeError:
                splice = False
            if splice:
                stamped._json = '{"_from":%s,%s' % (_escape_str(from_jid), cached[1:])
        if remote:
            # Destined for a JID another shard hosts: hand the stamped
            # stanza across the boundary; the peer replays it through
            # :meth:`ingress` at the next epoch barrier.
            self.stanzas_egressed += 1
            self.egress(from_jid, to_jid, stamped)
            return
        route_ctx = (self.kernel.now, parent_span) if self._spans.enabled else None
        interceptor = self.interceptor
        if interceptor is None:
            self.kernel.schedule(self.latency_ms, self._route, from_jid, to_jid, stamped, route_ctx)
            return
        for extra_ms in interceptor.intercept(from_jid, to_jid, stamped):
            self.kernel.schedule(
                self.latency_ms + extra_ms, self._route, from_jid, to_jid, stamped, route_ctx
            )

    def ingress(self, from_jid: str, to_jid: str, stanza: dict) -> None:
        """Accept a stanza handed over from another shard's egress.

        The stanza is already stamped with ``_from`` by the sending
        switchboard; only the local delivery leg (base latency, offline
        storage, loss windows) is simulated here.  Roster checks were the
        sending side's responsibility — federated servers trust each
        other, as XMPP server-to-server links do.
        """
        self.ingress_at(from_jid, to_jid, stanza, self.kernel.now + self.latency_ms)

    def ingress_at(
        self, from_jid: str, to_jid: str, stanza: dict, due_ms: float
    ) -> None:
        """Like :meth:`ingress`, but deliver at an absolute kernel time.

        The fleet coordinator replays handoffs with their original submit
        time so the cross-shard leg costs exactly ``latency_ms`` — the
        same as a local route — making a partitioned run byte-identical
        to the single-shard one.  ``due_ms`` must not be in this kernel's
        past: a violation means the epoch barrier ran longer than the
        minimum cross-shard latency, which would silently distort the
        simulation, so it fails loudly here instead.
        """
        if to_jid not in self._accounts:
            raise RoutingError(f"ingress for unknown local JID: {to_jid}")
        if due_ms < self.kernel.now:
            raise RoutingError(
                f"late cross-shard handoff for {to_jid}: due at {due_ms} ms "
                f"but local clock is already {self.kernel.now} ms — the "
                f"epoch barrier exceeded the minimum cross-shard latency "
                f"({self.latency_ms} ms)"
            )
        # The routing span is recorded here, on the owning shard: the
        # sender egressed before opening one, and its span ids are
        # meaningless in this kernel anyway (parent stays 0).  Recovering
        # the submit time keeps the span's extent identical to the local
        # case.
        route_ctx = (
            (due_ms - self.latency_ms, 0) if self._spans.enabled else None
        )
        self.kernel.schedule_at(
            due_ms, self._route, from_jid, to_jid, stanza, route_ctx
        )

    def presence_at(self, to_jid: str, stanza: dict, due_ms: float) -> None:
        """Replay a cross-shard presence notification.

        Presence is a server-internal delivery, not a routed stanza — it
        goes straight into the peer's session exactly as :meth:`connect`
        would have scheduled it locally, and does not touch the routing
        counters.  The liveness check happens here (the sending shard
        cannot see this session); if the session is gone the presence is
        dropped, just as connect would never have scheduled it.
        """
        if to_jid not in self._accounts:
            raise RoutingError(f"ingress for unknown local JID: {to_jid}")
        if due_ms < self.kernel.now:
            raise RoutingError(
                f"late cross-shard presence for {to_jid}: due at {due_ms} ms "
                f"but local clock is already {self.kernel.now} ms"
            )
        session = self._sessions.get(to_jid)
        if session is None or not self._session_considered_alive(session):
            return
        self.kernel.schedule_at(due_ms, self._deliver_via, session, stanza)

    def _route_span(self, route_ctx, to_jid: str, outcome: str) -> None:
        if route_ctx is None or not self._spans.enabled:
            return
        start_ms, parent = route_ctx
        self._h_route.record(
            0, parent, start_ms, self.kernel.now, {"to": to_jid, "outcome": outcome}
        )

    def _route(self, from_jid: str, to_jid: str, stanza: dict, route_ctx=None) -> None:
        self.stanzas_routed += 1
        self._m_routed.inc()
        session = self._sessions.get(to_jid)
        if session is None:
            self._store_offline(to_jid, stanza)
            self._route_span(route_ctx, to_jid, "offline")
            return
        if not self._session_considered_alive(session):
            # Keepalive expired: tear the session down and store instead.
            self.disconnect(session)
            self._store_offline(to_jid, stanza)
            self._route_span(route_ctx, to_jid, "offline")
            return
        self._deliver_via(session, stanza, route_ctx)

    def _deliver_via(self, session: Session, stanza: dict, route_ctx=None) -> None:
        # Cached envelope JSON makes this size lookup nearly free even
        # though the transport already accounted the same payload.
        size = message_size_bytes(stanza)
        self._m_bytes.inc(size)
        if session.physical_rx is None:
            # Wired client (collector PC): delivery always succeeds.
            self._route_span(route_ctx, session.jid, "delivered")
            session.deliver(stanza)
            return

        complete = _DeliveryComplete(self, session, stanza, route_ctx)
        try:
            session.physical_rx(size, complete)
        except Exception:
            self._route_span(route_ctx, session.jid, "lost")
            self._lose(session, stanza)

    def _lose(self, session: Session, stanza: dict) -> None:
        self.stanzas_lost += 1
        self._m_lost.inc()
        if self.trace is not None:
            self.trace.record("xmpp", "stanza_lost", jid=session.jid)
        if self._sessions.get(session.jid) is session:
            self.disconnect(session)

    # ------------------------------------------------------------------
    # Offline storage
    # ------------------------------------------------------------------
    def _store_offline(self, jid: str, stanza: dict) -> None:
        self.stanzas_stored_offline += 1
        self._m_offline.inc()
        self._offline.setdefault(jid, deque()).append(stanza)

    def _drain_offline(self, jid: str, session: Session) -> None:
        queue = self._offline.get(jid)
        if not queue:
            return
        pending = list(queue)
        queue.clear()
        for stanza in pending:
            self.kernel.schedule(self.latency_ms, self._deliver_via, session, stanza)

    def offline_count(self, jid: str) -> int:
        return len(self._offline.get(jid, ()))
