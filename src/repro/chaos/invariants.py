"""Online invariant monitor: the pipeline's guarantees, checked live.

The chaos engine is only half the instrument.  The other half is an
observer that states what must remain true *no matter what faults are
injected*, and checks it while the simulation runs:

1. **Buffer conservation** — ``enqueued = drained + expired + occupancy``
   for every device's outgoing store, sampled periodically and at the
   end.  A message may leave the buffer only by being handed to the
   reliable layer or by the 24-hour purge.
2. **Exactly-once, in-order** — a :class:`~repro.net.acks.LinkObserver`
   witness on every ReliableLink: no sequence number is delivered twice,
   delivered sequence numbers strictly increase, and any receiver-side
   gap is covered by an explicit sender abandonment (the ``base``
   advance), never by silent loss.
3. **Envelope conservation** — every sequence number ever transmitted is,
   at the end of the run, delivered, abandoned-and-accounted, or still
   held by the protocol (sender unacked / receiver reorder buffer).
   After the settle phase the last category must be empty: a healed
   network leaves nothing stuck in flight.
4. **Ack sanity** — cumulative acks a node emits never regress.
5. **Scheduler serialization** — the paper's "only a single thread will
   run code from a given script at any time": no serial key is ever
   re-entered while a task for it is still running.
6. **Energy books balance** — each device's
   :class:`~repro.sim.spans.EnergyLedger` reconciles attributed + control
   + unattributed energy against the sum of its radio episodes (≤ 1%).

Violations carry the simulated time, the subject (link, buffer,
scheduler key, ledger) and the trace ids of the envelopes involved, so a
failing chaos run points at the exact message that broke the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.middleware import PogoSimulation
from ..net.acks import LinkObserver, ReliableLink
from ..sim.kernel import SECOND
from .impairments import stanza_trace_ids

#: Acceptance bound for the energy ledger reconciliation (fractional).
ENERGY_RECONCILIATION_BOUND = 0.01


@dataclass
class Violation:
    """One observed breach of a pipeline invariant."""

    invariant: str
    time_ms: float
    subject: str
    detail: str
    trace_ids: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detail": self.detail,
            "invariant": self.invariant,
            "subject": self.subject,
            "time_ms": round(self.time_ms, 3),
            "trace_ids": sorted(set(self.trace_ids)),
        }

    def __str__(self) -> str:
        traces = ""
        if self.trace_ids:
            shown = ", ".join(f"{t:#x}" for t in sorted(set(self.trace_ids))[:4])
            more = len(set(self.trace_ids)) - 4
            traces = f" [traces: {shown}{f' +{more}' if more > 0 else ''}]"
        return (
            f"[{self.invariant}] t={self.time_ms:.0f}ms {self.subject}: "
            f"{self.detail}{traces}"
        )


class _LinkWitness(LinkObserver):
    """Per-link protocol witness (one direction-pair: owner <-> peer).

    Records what the link *did*; the monitor judges it.  Sender-side
    fields describe the owner→peer direction, receiver-side fields the
    peer→owner direction.
    """

    def __init__(self, monitor: "InvariantMonitor", owner: str, link: ReliableLink) -> None:
        self.monitor = monitor
        self.owner = owner
        self.peer = link.peer
        self.link = link
        # Sender side (owner -> peer).
        self.tx_trace_ids: Dict[int, List[int]] = {}
        self.tx_counts: Dict[int, int] = {}
        self.abandoned: Set[int] = set()
        # Receiver side (peer -> owner).
        self.delivered_seqs: List[int] = []
        self.delivered_set: Set[int] = set()
        self.gap_skips: List[Tuple[int, int]] = []
        self.duplicates = 0
        self.last_ack_emitted = -1

    @property
    def subject(self) -> str:
        return f"{self.owner}->{self.peer}"

    # -- LinkObserver ---------------------------------------------------
    def on_transmit(self, link: ReliableLink, seq: int, payload: Any, retransmit: bool) -> None:
        self.tx_counts[seq] = self.tx_counts.get(seq, 0) + 1
        if seq not in self.tx_trace_ids:
            self.tx_trace_ids[seq] = stanza_trace_ids({"payload": payload})

    def on_abandon(self, link: ReliableLink, seqs: List[int]) -> None:
        self.abandoned.update(seqs)

    def on_deliver(self, link: ReliableLink, seq: int, payload: Any) -> None:
        if seq in self.delivered_set:
            self.monitor.record(
                "exactly-once",
                f"{self.peer}->{self.owner}",
                f"seq {seq} delivered twice",
                stanza_trace_ids({"payload": payload}),
            )
        if self.delivered_seqs and seq <= self.delivered_seqs[-1]:
            self.monitor.record(
                "in-order",
                f"{self.peer}->{self.owner}",
                f"seq {seq} delivered after seq {self.delivered_seqs[-1]}",
                stanza_trace_ids({"payload": payload}),
            )
        self.delivered_seqs.append(seq)
        self.delivered_set.add(seq)

    def on_duplicate(self, link: ReliableLink, seq: int) -> None:
        self.duplicates += 1

    def on_gap_skip(self, link: ReliableLink, old_expected: int, base: int) -> None:
        self.gap_skips.append((old_expected, base))

    def on_ack_emitted(self, link: ReliableLink, ack: int) -> None:
        if ack < self.last_ack_emitted:
            self.monitor.record(
                "ack-monotonic",
                self.subject,
                f"emitted ack {ack} after ack {self.last_ack_emitted}",
            )
        self.last_ack_emitted = ack

    def summary(self) -> Dict[str, Any]:
        return {
            "abandoned": len(self.abandoned),
            "delivered": len(self.delivered_seqs),
            "duplicates_suppressed": self.duplicates,
            "gap_skips": len(self.gap_skips),
            "transmissions": sum(self.tx_counts.values()),
            "unacked": self.link.unacked_count,
            "unique_sent": len(self.tx_counts),
        }


class _SchedulerWitness:
    """Checks per-key serialization for one scheduler."""

    def __init__(self, monitor: "InvariantMonitor", name: str) -> None:
        self.monitor = monitor
        self.name = name
        self._depth: Dict[str, int] = {}

    def task_started(self, scheduler, key: Optional[str]) -> None:
        if key is None:
            return
        depth = self._depth.get(key, 0) + 1
        self._depth[key] = depth
        if depth > 1:
            self.monitor.record(
                "scheduler-serialization",
                f"{self.name}/{key}",
                f"serial key entered {depth} times concurrently",
            )

    def task_finished(self, scheduler, key: Optional[str]) -> None:
        if key is None:
            return
        self._depth[key] = self._depth.get(key, 0) - 1


class InvariantMonitor:
    """Attaches witnesses across a simulation and accumulates violations."""

    def __init__(
        self,
        sim: PogoSimulation,
        check_interval_ms: Optional[float] = 30 * SECOND,
    ) -> None:
        self.sim = sim
        self.kernel = sim.kernel
        #: ``None`` makes the monitor a pure observer: witnesses still
        #: watch every link and scheduler, but no periodic check event is
        #: ever scheduled, so attaching it cannot change the kernel's
        #: event count.  Scenario runs use this so solo and sharded
        #: executions stay byte-identical.
        self.check_interval_ms = check_interval_ms
        self.violations: List[Violation] = []
        self._witnesses: Dict[Tuple[str, str], _LinkWitness] = {}
        self._finished = False
        self._m_violations = sim.kernel.metrics.counter("chaos.violations")
        self._attach()

    # ------------------------------------------------------------------
    def record(
        self, invariant: str, subject: str, detail: str, trace_ids: Optional[List[int]] = None
    ) -> Violation:
        violation = Violation(invariant, self.kernel.now, subject, detail, list(trace_ids or []))
        self.violations.append(violation)
        self._m_violations.inc()
        return violation

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        nodes = [(jid, self.sim.collectors[jid].node) for jid in sorted(self.sim.collectors)]
        nodes += [(jid, self.sim.devices[jid].node) for jid in sorted(self.sim.devices)]
        for jid, node in nodes:
            node.scheduler.observer = _SchedulerWitness(self, node.scheduler.name)
            for link in node.links.values():
                self._attach_link(jid, link)
            node.on_link_created.append(partial(self._attach_link, jid))
        if self.check_interval_ms is not None:
            self.kernel.schedule(self.check_interval_ms, self._periodic)

    def _attach_link(self, owner: str, link: ReliableLink) -> None:
        witness = _LinkWitness(self, owner, link)
        self._witnesses[(owner, link.peer)] = witness
        link.observer = witness

    # ------------------------------------------------------------------
    # Periodic checks
    # ------------------------------------------------------------------
    def _periodic(self) -> None:
        self._check_buffers()
        self.kernel.schedule(self.check_interval_ms, self._periodic)

    def _check_buffers(self) -> None:
        for jid in sorted(self.sim.devices):
            buffer = self.sim.devices[jid].node.buffer
            error = buffer.conservation_error()
            if error != 0:
                self.record(
                    "buffer-conservation",
                    f"{jid}.buffer",
                    f"enqueued-drained-expired-occupancy = {error} (expected 0)",
                )

    # ------------------------------------------------------------------
    # End-of-run judgement
    # ------------------------------------------------------------------
    def finish(self, expect_quiesced: bool = True) -> List[Violation]:
        """Run the terminal checks; idempotent.

        With ``expect_quiesced`` the network is assumed healed and
        drained (the engine's settle phase ran): anything still held by
        the protocol is reported as stuck in flight.
        """
        if self._finished:
            return self.violations
        self._finished = True
        self._check_buffers()
        for (owner, peer) in sorted(self._witnesses):
            self._judge_direction(self._witnesses[(owner, peer)], expect_quiesced)
        for jid in sorted(self.sim.devices):
            ledger = self.sim.devices[jid].node.energy
            ledger.finalize()
            delta = ledger.reconciliation_delta()
            if delta > ENERGY_RECONCILIATION_BOUND:
                self.record(
                    "energy-reconciliation",
                    f"{jid}.energy",
                    f"ledger delta {delta:.4%} exceeds {ENERGY_RECONCILIATION_BOUND:.0%}",
                )
        return self.violations

    def _judge_direction(self, witness: _LinkWitness, expect_quiesced: bool) -> None:
        """Judge the witness's *sender* direction (owner -> peer)."""
        if (
            witness.peer not in self.sim.devices
            and witness.peer not in self.sim.collectors
        ):
            # Cross-shard boundary link: delivery and acking happen on
            # the peer's shard, invisible to this monitor.  Conservation
            # across the boundary is gated fleet-wide by the sharded-vs-
            # solo report parity instead of judged here (a per-shard
            # judgement would flag every healthy boundary link).
            return
        mate = self._witnesses.get((witness.peer, witness.owner))
        link = witness.link
        # The witness reads protocol-private state; it never writes it.
        in_flight_rx: Set[int] = set(getattr(mate.link, "_out_of_order", {})) if mate else set()
        unacked: Set[int] = set(getattr(link, "_unacked", {}))
        lost: List[int] = []
        for seq in sorted(witness.tx_counts):
            if mate is not None and seq in mate.delivered_set:
                continue
            if seq in witness.abandoned or seq in unacked or seq in in_flight_rx:
                continue
            lost.append(seq)
        if lost:
            trace_ids = [t for seq in lost for t in witness.tx_trace_ids.get(seq, [])]
            self.record(
                "envelope-conservation",
                witness.subject,
                f"seqs {lost[:8]}{'...' if len(lost) > 8 else ''} transmitted but "
                "neither delivered, abandoned, nor in flight",
                trace_ids,
            )
        if mate is not None:
            for old_expected, base in mate.gap_skips:
                skipped = set(range(old_expected, base))
                unaccounted = sorted(skipped - witness.abandoned)
                if unaccounted:
                    self.record(
                        "gap-accounting",
                        witness.subject,
                        f"receiver skipped seqs {unaccounted[:8]} without a "
                        "matching sender abandonment",
                    )
        if expect_quiesced:
            if unacked:
                stuck = sorted(unacked)
                trace_ids = [t for seq in stuck for t in witness.tx_trace_ids.get(seq, [])]
                self.record(
                    "quiescence",
                    witness.subject,
                    f"{len(stuck)} envelope(s) still unacked after settle "
                    f"(seqs {stuck[:8]}{'...' if len(stuck) > 8 else ''})",
                    trace_ids,
                )
            if mate is not None and in_flight_rx:
                self.record(
                    "quiescence",
                    witness.subject,
                    f"{len(in_flight_rx)} envelope(s) stranded in the receiver's "
                    f"reorder buffer (seqs {sorted(in_flight_rx)[:8]})",
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def link_summaries(self) -> Dict[str, Dict[str, Any]]:
        return {
            f"{owner}->{peer}": self._witnesses[(owner, peer)].summary()
            for owner, peer in sorted(self._witnesses)
        }

    def violations_dicts(self) -> List[Dict[str, Any]]:
        return sorted(
            (v.to_dict() for v in self.violations),
            key=lambda d: (d["time_ms"], d["invariant"], d["subject"], d["detail"]),
        )
