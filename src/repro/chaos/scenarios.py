"""Chaos scenarios: canned fault campaigns with a built-in verdict.

Each scenario builds a small battery-monitoring fleet (the Table 3
workload), lets the chaos engine loose on it for a fault window, then
heals the network and drives the recovery machinery to quiescence before
asking the :class:`~repro.chaos.invariants.InvariantMonitor` for its
verdict.  The output is a deterministic report: same scenario + seed →
byte-identical JSON, so a red run travels as two small numbers.

``inject_bug`` deliberately breaks the middleware (skip retransmissions,
or silently forget an unacked envelope) to prove the monitor catches
real defects and names the offending envelope's trace id — a canary for
the canary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..apps import battery_monitor
from ..core.middleware import PogoSimulation, SimulatedDevice
from ..sim.kernel import MINUTE
from .engine import ChaosEngine
from .invariants import InvariantMonitor

#: Counters included in the report's ``chaos`` section.
_CHAOS_COUNTERS = (
    "chaos.dropped",
    "chaos.duplicated",
    "chaos.reordered",
    "chaos.delayed",
    "chaos.partition_dropped",
    "chaos.passed",
    "chaos.server_restarts",
    "chaos.violations",
)

#: Known bug injections (see :func:`_inject_bug`).
BUGS = ("skip-retransmit", "forget-unacked")


class _NoResend:
    """Injected bug: a ``resend_unacked`` that never retransmits.

    A module-level callable (not a lambda) so a shard snapshot taken
    mid-campaign with the bug armed still pickles.
    """

    def __call__(self, max_age_ms=None) -> int:
        return 0


class _InstallNoResend:
    """on_link_created listener installing :class:`_NoResend`."""

    def __call__(self, link) -> None:
        link.resend_unacked = _NoResend()


class _ForgetUnacked:
    """Injected bug: drop the victim's lowest unacked envelope."""

    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def __call__(self) -> None:
        victim = self.node
        for peer in sorted(victim.links):
            link = victim.links[peer]
            if link._unacked:
                seq = min(link._unacked)
                del link._unacked[seq]
                link._sent_at.pop(seq, None)
                return


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    default_minutes: float
    apply: Callable[[ChaosEngine, PogoSimulation, float], None]


def _flaky_3g(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    engine.impair(drop=0.12, delay_ms=(40.0, 400.0))


def _reorder_storm(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    engine.impair(reorder=0.30, dup=0.10, delay_ms=(10.0, 80.0), hold_ms=(500.0, 4_000.0))


def _partition(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    start = sim.kernel.now
    jids = sorted(sim.devices)
    island = jids[: max(1, len(jids) // 2)]
    engine.partition(island, start + 0.10 * minutes * MINUTE, 0.35 * minutes * MINUTE)
    engine.partition(island, start + 0.60 * minutes * MINUTE, 0.25 * minutes * MINUTE)
    engine.impair(delay_ms=(20.0, 120.0))


def _server_restarts(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    start = sim.kernel.now
    engine.server_restart(start + 0.25 * minutes * MINUTE)
    engine.server_restart(start + 0.70 * minutes * MINUTE)
    engine.impair(delay_ms=(20.0, 150.0))


def _churn(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    for jid in sorted(sim.devices):
        engine.device_churn(
            sim.devices[jid],
            minutes * 0.8,
            reboot_rate_per_hour=3.0,
            outage_rate_per_hour=6.0,
            mean_outage_s=60.0,
        )
    engine.impair(delay_ms=(10.0, 100.0))


def _mixed(engine: ChaosEngine, sim: PogoSimulation, minutes: float) -> None:
    start = sim.kernel.now
    engine.impair(drop=0.06, reorder=0.10, dup=0.04, delay_ms=(20.0, 200.0))
    jids = sorted(sim.devices)
    engine.partition(jids[:1], start + 0.3 * minutes * MINUTE, 2 * MINUTE)
    engine.server_restart(start + 0.55 * minutes * MINUTE)
    if jids:
        engine.device_churn(
            sim.devices[jids[-1]],
            minutes * 0.8,
            reboot_rate_per_hour=2.0,
            outage_rate_per_hour=4.0,
            mean_outage_s=60.0,
        )


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("flaky-3g", "12% stanza loss + 40-400ms extra latency on every link", 12.0, _flaky_3g),
        Scenario("reorder-storm", "30% reordering, 10% duplication, jittery latency", 12.0, _reorder_storm),
        Scenario("partition", "half the fleet islanded twice, mild latency throughout", 12.0, _partition),
        Scenario("server-restarts", "two XMPP server bounces mid-run (sessions die, offline storage survives)", 12.0, _server_restarts),
        Scenario("churn", "per-device reboots and mobile-data gaps from seeded streams", 15.0, _churn),
        Scenario("mixed", "loss + reorder + partition + restart + churn together", 15.0, _mixed),
    )
}


def _inject_bug(
    kind: str,
    sim: PogoSimulation,
    engine: ChaosEngine,
    devices: List[SimulatedDevice],
    chaos_ms: float,
) -> None:
    """Break the middleware on purpose so the monitor has something to catch.

    Both bugs are only *visible* when the victim actually loses traffic,
    so the injection also pins a heavy drop rule on the victim's
    outgoing links (prepended, so it wins over the scenario's wildcard
    rules).  The bug, not the drops, is what violates the invariants —
    every scenario survives far worse loss when the middleware is intact.
    """
    victim = devices[0].node
    engine.impair(src=victim.jid, drop=0.5)
    if kind == "skip-retransmit":
        # The classic silent-loss bug: the device never retransmits, so
        # any dropped envelope stays unacked forever.  Caught by the
        # quiescence invariant, with the stuck envelopes' trace ids.
        victim.on_link_created.append(_InstallNoResend())
    elif kind == "forget-unacked":
        # Sender-side amnesia: periodically drop the lowest unacked
        # envelope without abandoning it (no base advance), so a lost
        # copy is unrecoverable and unaccounted.  Caught by the
        # envelope-conservation / quiescence invariants.
        forget = _ForgetUnacked(victim)
        step = chaos_ms / 16.0
        for i in range(6, 16):
            sim.kernel.schedule_at(i * step, forget)
    else:
        raise ValueError(f"unknown bug injection: {kind!r} (choose from {BUGS})")


def run_scenario(
    name: str,
    seed: int = 7,
    minutes: Optional[float] = None,
    devices: int = 3,
    inject_bug: Optional[str] = None,
    settle_minutes: float = 9.0,
    snapshot_midpoint: bool = False,
    artifacts: Optional[Dict[str, Any]] = None,
    spec=None,
) -> Dict[str, Any]:
    """Run one chaos scenario end to end; returns the deterministic report.

    With ``snapshot_midpoint=True`` the shard is pickled and restored
    halfway through the fault window and the campaign continues on the
    restored copy.  The report (and span trace) must come out
    byte-identical either way — the snapshot-determinism regression test
    pins exactly that.

    ``spec`` composes the fault campaign with the scenario engine: pass
    a :class:`~repro.scenarios.spec.ScenarioSpec` and the chaos fleet is
    replaced by that scenario's compiled shard — generative worlds,
    surges, multi-campaign deployment and all — with the fault window
    overlaid on top.  The report gains a ``workload`` key naming the
    scenario (legacy reports are byte-for-byte unchanged).
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(f"unknown scenario {name!r} (choose from {sorted(SCENARIOS)})")
    chaos_minutes = scenario.default_minutes if minutes is None else float(minutes)
    chaos_ms = chaos_minutes * MINUTE

    if spec is not None:
        from ..core.shard import Shard
        from ..scenarios.workload import attach_scenario, start_scenario

        sim = Shard(spec.compile())
        devices = spec.devices
        fleet = [sim.devices[jid] for jid in sorted(sim.devices)]
        engine = ChaosEngine(sim)
        if inject_bug:
            _inject_bug(inject_bug, sim, engine, fleet, chaos_ms)
        # The chaos path owns the monitor (periodic checks on); the
        # scenario workload must not attach its own.
        monitor = InvariantMonitor(sim)
        sim.extras["chaos_engine"] = engine
        sim.extras["invariant_monitor"] = monitor
        attach_scenario(sim, spec, monitor=False)
        start_scenario(sim, spec)
    else:
        sim = PogoSimulation(seed=seed)
        collector = sim.add_collector("chaos")
        fleet = [sim.add_device(with_email_app=True) for _ in range(devices)]
        engine = ChaosEngine(sim)
        if inject_bug:
            _inject_bug(inject_bug, sim, engine, fleet, chaos_ms)
        # Attach the monitor before any link exists so every ReliableLink
        # gets its witness from birth.
        monitor = InvariantMonitor(sim)
        # Shard extras travel with a snapshot; a restored campaign re-finds
        # its engine and monitor here instead of holding stale references.
        sim.extras["chaos_engine"] = engine
        sim.extras["invariant_monitor"] = monitor

        sim.start()
        sim.assign(collector, fleet)
        collector.node.deploy(
            battery_monitor.build_experiment(), [d.jid for d in fleet]
        )

    scenario.apply(engine, sim, chaos_minutes)
    # Both targets are computed up front so the interrupted and the
    # uninterrupted paths run to bit-identical deadlines.
    midpoint = sim.kernel.now + chaos_ms / 2.0
    horizon = sim.kernel.now + chaos_ms
    sim.kernel.run_until(midpoint)
    if snapshot_midpoint:
        sim = PogoSimulation.restore(sim.snapshot())
        engine = sim.extras["chaos_engine"]
        monitor = sim.extras["invariant_monitor"]
    sim.kernel.run_until(horizon)

    # Heal, then drive resends/acks until the pipeline can quiesce.
    engine.settle()
    for _ in range(max(1, int(settle_minutes) - 1)):
        sim.run(minutes=1)
        engine.drive_resends()
    sim.run(minutes=1)

    violations = monitor.finish(expect_quiesced=True)
    if artifacts is not None:
        # Out-of-band handles for tests (the final sim, possibly the
        # restored copy) — never part of the byte-compared report.
        artifacts["sim"] = sim
    report = _build_report(
        scenario, sim, monitor, seed=seed, minutes=chaos_minutes,
        devices=devices, inject_bug=inject_bug,
    )
    if spec is not None:
        # Name the composed workload — spec path only, so the legacy
        # report stays byte-for-byte pinned by the golden masters.
        report["workload"] = spec.name
    return report


def _build_report(
    scenario: Scenario,
    sim: PogoSimulation,
    monitor: InvariantMonitor,
    seed: int,
    minutes: float,
    devices: int,
    inject_bug: Optional[str],
) -> Dict[str, Any]:
    metrics = sim.kernel.metrics
    collector = next(iter(sim.collectors.values()))
    context = collector.node.contexts.get(battery_monitor.EXPERIMENT_ID)
    readings = 0
    if context is not None and "collect" in context.scripts:
        readings = len(context.scripts["collect"].namespace.get("readings", ()))
    links = [
        sim.devices[jid].node.links[peer]
        for jid in sorted(sim.devices)
        for peer in sorted(sim.devices[jid].node.links)
    ] + [collector.node.links[peer] for peer in sorted(collector.node.links)]
    report = {
        "bug": inject_bug or "none",
        "chaos": {name: metrics.counter(name).value for name in _CHAOS_COUNTERS},
        "devices": devices,
        "links": monitor.link_summaries(),
        "minutes": minutes,
        "pipeline": {
            "abandoned": sum(l.abandoned for l in links),
            "delivered": sum(l.delivered for l in links),
            "duplicates_suppressed": sum(l.duplicates for l in links),
            "expired": sum(sim.devices[j].node.buffer.expired for j in sim.devices),
            "readings": readings,
            "server_restarts": sim.server.restarts,
            "stanzas_lost": sim.server.stanzas_lost,
            "stanzas_stored_offline": sim.server.stanzas_stored_offline,
        },
        "scenario": scenario.name,
        "seed": seed,
        "violation_count": len(monitor.violations),
        "violations": monitor.violations_dicts(),
    }
    return report


def report_json(report: Dict[str, Any]) -> str:
    """Canonical byte-identical serialization of a scenario report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary for the CLI."""
    lines = [
        f"scenario: {report['scenario']}  seed={report['seed']}  "
        f"minutes={report['minutes']:g}  devices={report['devices']}"
        + (f"  bug={report['bug']}" if report["bug"] != "none" else ""),
        "chaos:    "
        + "  ".join(
            f"{name.split('.', 1)[1]}={count}"
            for name, count in sorted(report["chaos"].items())
            if count
        ),
        "pipeline: "
        + "  ".join(f"{k}={v}" for k, v in sorted(report["pipeline"].items())),
    ]
    violations = report["violations"]
    if not violations:
        lines.append("verdict:  OK — all invariants held")
    else:
        lines.append(f"verdict:  {len(violations)} VIOLATION(S)")
        for v in violations:
            traces = ""
            if v["trace_ids"]:
                shown = ", ".join(f"{t:#x}" for t in v["trace_ids"][:4])
                extra = len(v["trace_ids"]) - 4
                traces = f" [traces: {shown}{f' +{extra}' if extra > 0 else ''}]"
            lines.append(
                f"  [{v['invariant']}] t={v['time_ms']:.0f}ms "
                f"{v['subject']}: {v['detail']}{traces}"
            )
    return "\n".join(lines)
