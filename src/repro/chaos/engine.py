"""The chaos engine: schedules faults against a whole simulated testbed.

:class:`ChaosEngine` wraps a :class:`~repro.core.middleware.PogoSimulation`
and turns the impairment primitives into *campaigns*: link impairments
with wildcard scope, timed network partitions, XMPP server restarts (the
Openfire-bounce the deployment suffered: sessions die, offline storage
survives), and per-device churn — reboots and mobile-data gaps drawn
from seeded streams, generalizing the Section 5.3 disruption zoo.

Everything is scheduled on the simulation kernel, so a chaos campaign is
just more deterministic events: same seed, same faults, same outcome,
bit for bit.

The engine also owns the *settle* phase: :meth:`settle` lifts every
rule/partition and restores device connectivity so the invariant
monitor's end-of-run liveness checks ("nothing still stuck in flight")
are judged against a network that has been allowed to heal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..core.middleware import PogoSimulation, SimulatedDevice
from ..sim.kernel import MINUTE, SECOND
from ..world.disruptions import DATA_OFF, DATA_ON, REBOOT, Disruption, DisruptionPlan
from .impairments import ChaosInterceptor, Impairment


class ChaosEngine:
    """Fault campaigns against one simulated testbed."""

    def __init__(self, sim: PogoSimulation) -> None:
        self.sim = sim
        self.kernel = sim.kernel
        self.interceptor = ChaosInterceptor(
            sim.kernel, sim.streams.stream("chaos/impairments")
        )
        sim.server.interceptor = self.interceptor
        self._m_restarts = sim.kernel.metrics.counter("chaos.server_restarts")
        self._churn_plans: List[DisruptionPlan] = []

    # ------------------------------------------------------------------
    # Link impairments & partitions
    # ------------------------------------------------------------------
    def impair(self, src: str = "*", dst: str = "*", **dials) -> Impairment:
        """Impair the ``src``→``dst`` link ('*' wildcards); returns the
        :class:`Impairment` so callers can tweak dials afterwards."""
        impairment = dials.pop("impairment", None) or Impairment(**dials)
        self.interceptor.add_rule(src, dst, impairment)
        return impairment

    def impair_both_ways(self, a: str, b: str, **dials) -> None:
        impairment = Impairment(**dials)
        self.interceptor.add_rule(a, b, impairment)
        self.interceptor.add_rule(b, a, impairment)

    def partition(self, island: Iterable[str], at_ms: float, duration_ms: float) -> None:
        """Cut ``island`` off from the rest of the roster for a window."""
        members: Set[str] = set(island)
        self.kernel.schedule_at(at_ms, self.interceptor.start_partition, members)
        self.kernel.schedule_at(at_ms + duration_ms, self.interceptor.end_partition, members)

    # ------------------------------------------------------------------
    # Server restarts
    # ------------------------------------------------------------------
    def server_restart(self, at_ms: float) -> None:
        """Bounce the XMPP server at ``at_ms``.

        Sessions die and in-flight stanzas land in the loss window;
        offline storage survives (it is a database in the real
        deployment).  Every transport is told its connection is gone so
        it re-runs its reconnect path — without that nudge a phone
        parked on a stable interface would never notice the restart.
        """
        self.kernel.schedule_at(at_ms, self._do_restart)

    def _do_restart(self) -> None:
        self.sim.server.restart()
        self._m_restarts.inc()
        # Sorted JIDs: the notification order must not depend on dict
        # insertion order, or a merged/restored shard reconnects its
        # fleet in a different sequence than the original run.
        for jid in sorted(self.sim.collectors):
            self.sim.collectors[jid].node.transport.notice_connection_lost()
        for jid in sorted(self.sim.devices):
            self.sim.devices[jid].node.transport.notice_connection_lost()

    # ------------------------------------------------------------------
    # Device churn
    # ------------------------------------------------------------------
    def device_churn(
        self,
        device: SimulatedDevice,
        minutes: float,
        start_ms: Optional[float] = None,
        reboot_rate_per_hour: float = 1.0,
        outage_rate_per_hour: float = 2.0,
        mean_outage_s: float = 90.0,
    ) -> DisruptionPlan:
        """Schedule reboots and mobile-data gaps for one phone.

        Draws come from a per-device named stream
        (``chaos/churn/<jid>``), so adding a phone to the fleet never
        perturbs another phone's fault schedule.  Data gaps are emitted
        as DATA_OFF/DATA_ON pairs clamped inside the chaos window; the
        settle phase re-enables data regardless, as a belt-and-braces
        measure against an unlucky horizon clip.
        """
        rng = self.sim.streams.stream(f"chaos/churn/{device.jid}")
        start = self.kernel.now if start_ms is None else start_ms
        horizon = start + minutes * MINUTE
        plan = DisruptionPlan()
        if reboot_rate_per_hour > 0:
            t = start
            mean_gap = 60.0 * MINUTE / reboot_rate_per_hour
            while True:
                t += rng.expovariate(1.0 / mean_gap)
                if t >= horizon:
                    break
                plan.events.append(Disruption(t, REBOOT))
        if outage_rate_per_hour > 0:
            t = start
            mean_gap = 60.0 * MINUTE / outage_rate_per_hour
            while True:
                t += rng.expovariate(1.0 / mean_gap)
                if t >= horizon:
                    break
                duration = rng.expovariate(1.0 / (mean_outage_s * SECOND))
                plan.events.append(Disruption(t, DATA_OFF))
                plan.events.append(Disruption(min(t + duration, horizon), DATA_ON))
                t += duration
        plan.schedule(self.kernel, device.phone)
        self._churn_plans.append(plan)
        return plan

    # ------------------------------------------------------------------
    # Settling
    # ------------------------------------------------------------------
    def settle(self) -> None:
        """Lift every fault and restore connectivity.

        After this the only thing between the pipeline and quiescence is
        its own recovery machinery (reconnects, resends, acks) — which
        is exactly what the monitor's liveness invariants judge.
        """
        self.interceptor.heal()
        for jid in sorted(self.sim.devices):
            phone = self.sim.devices[jid].phone
            phone.set_data_enabled(True)
            phone.set_cell_coverage(True)
            phone.suppress_wifi_association(False)

    def drive_resends(self) -> None:
        """Poke every node's resend/ack machinery once (settle helper).

        Devices flush (which also retransmits and emits owed acks) when
        connected; collectors retransmit their unacked envelopes without
        waiting for their five-minute timer.
        """
        for jid in sorted(self.sim.devices):
            node = self.sim.devices[jid].node
            if node.started and node.transport.connected:
                node.flush("chaos-settle")
        for jid in sorted(self.sim.collectors):
            node = self.sim.collectors[jid].node
            for peer in sorted(node.links):
                link = node.links[peer]
                link.resend_unacked()
                ack = link.make_ack()
                if ack is not None:
                    node._raw_send(link.peer, ack)
