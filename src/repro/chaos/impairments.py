"""Network impairment primitives, injected at the XMPP routing seam.

The deployment in Section 5.3 met the real world's faults one at a time
— stale sessions, dead batteries, roaming data-off, a broken 3G
subscription.  This module generalizes them into the classic link
impairments (drop, duplication, reordering, added latency, partitions)
applied per (sender, receiver) pair at the one place every remote stanza
passes: :meth:`repro.net.xmpp.XmppServer.submit`.

Mechanism: :class:`ChaosInterceptor` implements the
:class:`~repro.net.xmpp.LinkInterceptor` seam.  For each stanza it
returns a *delivery plan* — a list of extra latencies, one per copy to
route.  ``[]`` drops the stanza, ``[0, 0]`` duplicates it, a large
single entry holds it past later traffic (reordering), and a modest one
adds queueing delay.  The server does the actual (re)scheduling, so the
interceptor stays pure policy and the impairment composes with the
switchboard's own loss modes (stale sessions, offline storage).

Determinism: every coin flip comes from one named stream of the
experiment's :class:`~repro.sim.randomness.RandomStreams`; two runs with
the same seed and scenario replay byte-identically, which is what lets a
failing chaos run be handed to a colleague as ``--seed N``.

Observability: every action increments a ``chaos.*`` metrics counter and
records a ``chaos.impair`` span whose attrs carry the action, the link
and the trace ids of any envelopes riding the stanza — a dropped
message's trace therefore *shows* the drop instead of dangling.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from ..net.xmpp import LinkInterceptor
from ..sim.kernel import Kernel


def stanza_trace_ids(stanza: Any) -> List[int]:
    """Trace ids of every traced envelope riding a wire stanza.

    Walks the reliable-link wrapper (``env`` stanzas), batch ops and pub
    ops; control traffic (acks, sub ops, deploys) yields no ids.  Used
    by the impairment spans and by invariant-violation reports to name
    the exact messages a fault touched.
    """
    ids: List[int] = []
    _collect_trace_ids(stanza, ids)
    return ids


def _collect_trace_ids(value: Any, ids: List[int]) -> None:
    if not isinstance(value, dict):
        return
    envelope = value.get("msg")
    if envelope is not None:
        trace_id = getattr(envelope, "trace_id", 0)
        if trace_id:
            ids.append(trace_id)
    payload = value.get("payload")
    if payload is not None:
        _collect_trace_ids(payload, ids)
    for item in value.get("items", ()):
        _collect_trace_ids(item, ids)


class Impairment:
    """One link's impairment dial settings (all probabilities in [0, 1]).

    ``delay_ms`` adds uniform extra latency to every delivered copy;
    ``hold_ms`` is how long a reordered stanza is held back — it must
    exceed the typical inter-stanza gap to actually overtake anything.
    """

    __slots__ = ("drop", "dup", "reorder", "delay_ms", "hold_ms")

    def __init__(
        self,
        drop: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        delay_ms: Tuple[float, float] = (0.0, 0.0),
        hold_ms: Tuple[float, float] = (500.0, 3_000.0),
    ) -> None:
        for name, p in (("drop", drop), ("dup", dup), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability out of range: {p}")
        self.drop = drop
        self.dup = dup
        self.reorder = reorder
        self.delay_ms = delay_ms
        self.hold_ms = hold_ms

    def describe(self) -> Dict[str, Any]:
        return {
            "drop": self.drop,
            "dup": self.dup,
            "reorder": self.reorder,
            "delay_ms": list(self.delay_ms),
            "hold_ms": list(self.hold_ms),
        }


class _Rule:
    """(src pattern, dst pattern) -> Impairment; '*' matches any JID."""

    __slots__ = ("src", "dst", "impairment")

    def __init__(self, src: str, dst: str, impairment: Impairment) -> None:
        self.src = src
        self.dst = dst
        self.impairment = impairment

    def matches(self, from_jid: str, to_jid: str) -> bool:
        return (self.src == "*" or self.src == from_jid) and (
            self.dst == "*" or self.dst == to_jid
        )


class ChaosInterceptor(LinkInterceptor):
    """The deterministic impairment engine behind the XMPP seam."""

    def __init__(self, kernel: Kernel, rng: random.Random) -> None:
        self.kernel = kernel
        self.rng = rng
        self._rules: List[_Rule] = []
        #: Active partitions: each is a frozenset of JIDs forming an
        #: island; stanzas crossing an island boundary are dropped.
        self._partitions: List[Set[str]] = []
        metrics = kernel.metrics
        self._m_dropped = metrics.counter("chaos.dropped")
        self._m_duplicated = metrics.counter("chaos.duplicated")
        self._m_reordered = metrics.counter("chaos.reordered")
        self._m_delayed = metrics.counter("chaos.delayed")
        self._m_partition_dropped = metrics.counter("chaos.partition_dropped")
        self._m_passed = metrics.counter("chaos.passed")
        self._h_extra = metrics.histogram("chaos.extra_latency_ms")
        self._spans = kernel.spans
        self._h_impair = kernel.spans.hop("chaos.impair")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_rule(self, src: str, dst: str, impairment: Impairment) -> None:
        """Impair stanzas from ``src`` to ``dst`` ('*' wildcards).

        First matching rule wins, so put specific links before '*'/'*'.
        """
        self._rules.append(_Rule(src, dst, impairment))

    def clear_rules(self) -> None:
        self._rules.clear()

    def start_partition(self, island: Set[str]) -> None:
        """Cut ``island`` off from everyone else (both directions)."""
        self._partitions.append(set(island))

    def end_partition(self, island: Set[str]) -> None:
        island = set(island)
        self._partitions = [p for p in self._partitions if p != island]

    def heal(self) -> None:
        """Drop every rule and partition: the settle phase's clean slate."""
        self._rules.clear()
        self._partitions.clear()

    @property
    def active(self) -> bool:
        return bool(self._rules or self._partitions)

    # ------------------------------------------------------------------
    # The seam
    # ------------------------------------------------------------------
    def intercept(self, from_jid: str, to_jid: str, stanza: dict) -> List[float]:
        for island in self._partitions:
            if (from_jid in island) != (to_jid in island):
                self._m_partition_dropped.inc()
                self._record("partition", from_jid, to_jid, stanza)
                return []
        impairment = None
        for rule in self._rules:
            if rule.matches(from_jid, to_jid):
                impairment = rule.impairment
                break
        if impairment is None:
            self._m_passed.inc()
            return [0.0]
        rng = self.rng
        if impairment.drop and rng.random() < impairment.drop:
            self._m_dropped.inc()
            self._record("drop", from_jid, to_jid, stanza)
            return []
        extra = 0.0
        lo, hi = impairment.delay_ms
        if hi > 0.0:
            extra = rng.uniform(lo, hi)
            self._m_delayed.inc()
            self._record("delay", from_jid, to_jid, stanza, extra_ms=extra)
        plan = [extra]
        if impairment.dup and rng.random() < impairment.dup:
            plan.append(extra)
            self._m_duplicated.inc()
            self._record("dup", from_jid, to_jid, stanza)
        if impairment.reorder and rng.random() < impairment.reorder:
            hold = rng.uniform(*impairment.hold_ms)
            plan[0] += hold
            self._m_reordered.inc()
            self._record("reorder", from_jid, to_jid, stanza, extra_ms=plan[0])
        if not (plan[0] or len(plan) > 1):
            self._m_passed.inc()
        for extra_ms in plan:
            if extra_ms:
                self._h_extra.observe(extra_ms)
        return plan

    def _record(
        self, action: str, from_jid: str, to_jid: str, stanza: dict, extra_ms: float = 0.0
    ) -> None:
        if not self._spans.enabled:
            return
        now = self.kernel.now
        attrs: Dict[str, Any] = {"action": action, "link": f"{from_jid}->{to_jid}"}
        if extra_ms:
            attrs["extra_ms"] = round(extra_ms, 3)
        trace_ids = stanza_trace_ids(stanza)
        trace_id = trace_ids[0] if trace_ids else 0
        if len(trace_ids) > 1:
            attrs["traces"] = len(trace_ids)
        self._h_impair.record(trace_id, 0, now, now, attrs)
