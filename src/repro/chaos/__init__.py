"""Deterministic chaos engine + online invariant monitor.

Generalizes the Section 5.3 deployment disruptions into reproducible
fault campaigns (drop/dup/reorder/latency/partition, XMPP server
restarts, device churn) against the message pipeline, while an invariant
monitor proves from the outside that the middleware's promises —
exactly-once in-order delivery, buffer and envelope conservation,
scheduler serialization, balanced energy books — survive the abuse.
"""

from .engine import ChaosEngine
from .impairments import ChaosInterceptor, Impairment, stanza_trace_ids
from .invariants import InvariantMonitor, Violation
from .scenarios import (
    BUGS,
    SCENARIOS,
    Scenario,
    render_report,
    report_json,
    run_scenario,
)

__all__ = [
    "BUGS",
    "SCENARIOS",
    "ChaosEngine",
    "ChaosInterceptor",
    "Impairment",
    "InvariantMonitor",
    "Scenario",
    "Violation",
    "render_report",
    "report_json",
    "run_scenario",
    "stanza_trace_ids",
]
