"""The 24-day localization deployment (Section 5.3, Table 4).

This module regenerates the paper's field study in simulation: nine user
sessions (eight participants; user 2 switched phones mid-study, giving
sessions 2a and 2b), each living a synthetic life while the localization
application runs, with the deployment's disruptions injected:

* random phone reboots and battery-outs;
* researcher script pushes on fixed days (state loss, pre-freeze/thaw);
* user 2a's trip abroad with data roaming off (→ 24 h purge);
* user 3's two-day 3G outage (he had no Wi-Fi offload);
* user 7 running without mobile Internet (Wi-Fi offload only).

Ground truth mirrors the paper's methodology: "The application
additionally logged all Wi-Fi scan results to SD card, and these raw
traces were collected after the experiment" — here a node-local
subscription records every sanitized scan, and the same clustering
algorithm is run offline over that log.  Table 4's columns fall out:
scans + raw bytes, locations + reduced bytes, match %, partial %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.clustering import Cluster, cluster_stream
from ..analysis.matching import MatchReport, match_clusters
from ..core.messages import message_size_bytes
from ..core.middleware import PogoSimulation
from ..core.services import GeolocationBridge
from ..sim.kernel import DAY
from ..world.disruptions import DisruptionPlan, cell_outage, standard_plan, trip_abroad
from ..world.geolocation import GeolocationService
from ..world.mobility import UserProfile
from ..world.rssi import PropagationModel
from . import localization

#: The deployment's RF environment.  Real phones in pockets see far more
#: RSSI churn than a clean path-loss model (body shadowing, AP load,
#: multipath): the paper's location counts (e.g. 230 sessions in ~18
#: days) imply clusters split well beyond the true dwell count.  A high
#: shadowing sigma and dropout rate reproduce that churn; both the
#: on-device pipeline and the ground truth see the same scans, so this
#: affects *session counts*, not match quality.
DEPLOYMENT_PROPAGATION = PropagationModel(sigma_db=6.0, dropout_probability=0.10)

#: Clustering parameters used by the deployed scripts *and* the offline
#: ground-truth pass (they must agree, as they did in the paper).  The
#: tight reachability threshold (together with the noisy RF model above)
#: reproduces the paper's session counts: clusters close not only when
#: the user leaves but also when the radio environment shifts enough,
#: which is why Table 4 reports hundreds of sessions per user.
DBSCAN_PARAMS = dict(eps_similarity=0.77, min_pts=5, window=60)


@dataclass
class SessionSpec:
    """One participant-session of the deployment."""

    name: str
    days: int
    lifestyle: str = "regular"
    #: Extra keyword overrides applied to the generated UserProfile.
    profile_overrides: Dict = field(default_factory=dict)
    has_mobile_data: bool = True
    wifi_enabled: bool = True
    trip_abroad_days: Optional[Tuple[float, float]] = None
    cell_outage_days: Optional[Tuple[float, float]] = None
    reboot_rate_per_day: float = 0.25
    update_days: Tuple[int, ...] = (2, 5, 9, 16)


#: The nine sessions, shaped after Table 4's row characteristics: user 1
#: joined late (fewer scans), user 2 split sessions around a phone swap
#: with a trip abroad during 2a, user 3 is highly mobile with a 3G
#: outage, user 6 is a homebody, user 7 has no mobile Internet.
DEFAULT_SESSIONS: Tuple[SessionSpec, ...] = (
    SessionSpec("user1", days=18, reboot_rate_per_day=0.20),
    SessionSpec("user2a", days=8, trip_abroad_days=(6.0, 7.5), update_days=(2, 5)),
    SessionSpec("user2b", days=5, update_days=(2,)),
    SessionSpec(
        "user3",
        days=24,
        lifestyle="mobile",
        profile_overrides={"visits_per_day": (18, 26), "visit_duration_min": (10.0, 32.0)},
        # Covers several weekdays: the field worker's dense visit days
        # are what the purge erases (the paper's biggest match hit).
        cell_outage_days=(8.5, 13.0),
        wifi_enabled=False,
        reboot_rate_per_day=0.25,
    ),
    SessionSpec("user4", days=23),
    SessionSpec(
        "user5",
        days=24,
        profile_overrides={"evening_out_probability": 0.55, "lunch_out_probability": 0.6},
    ),
    SessionSpec(
        "user6",
        days=24,
        profile_overrides={"evening_out_probability": 0.10, "lunch_out_probability": 0.15,
                           "weekend_outings": (0, 2)},
    ),
    SessionSpec(
        "user7",
        days=24,
        has_mobile_data=False,
        profile_overrides={"evening_out_probability": 0.65, "lunch_out_probability": 0.75,
                           "weekend_outings": (2, 4)},
        reboot_rate_per_day=0.20,
    ),
    SessionSpec("user8", days=24),
)

#: Table 4 as printed in the paper, for side-by-side comparison.
PAPER_TABLE4 = {
    "user1": dict(scans=25_562, raw=6_278_929, locations=230, reduced=89_514, match=95, partial=96),
    "user2a": dict(scans=11_474, raw=3_082_356, locations=121, reduced=48_048, match=86, partial=90),
    "user2b": dict(scans=6_745, raw=2_139_525, locations=93, reduced=44_154, match=97, partial=100),
    "user3": dict(scans=33_224, raw=9_064_727, locations=1282, reduced=437_527, match=80, partial=83),
    "user4": dict(scans=32_092, raw=12_664_291, locations=274, reduced=139_572, match=92, partial=97),
    "user5": dict(scans=33_549, raw=11_836_962, locations=333, reduced=197_433, match=95, partial=98),
    "user6": dict(scans=34_230, raw=14_426_142, locations=158, reduced=77_251, match=89, partial=96),
    "user7": dict(scans=35_637, raw=9_305_313, locations=703, reduced=181_389, match=96, partial=98),
    "user8": dict(scans=34_395, raw=11_618_974, locations=329, reduced=141_634, match=95, partial=97),
}


@dataclass
class SessionResult:
    """One regenerated Table 4 row."""

    name: str
    scans: int
    raw_bytes: int
    locations: int
    location_bytes: int
    match_percent: float
    partial_percent: float
    truth_clusters: int
    expired_messages: int
    report: MatchReport

    def row(self) -> str:
        return (
            f"{self.name:<8} {self.scans:>7,} {self.raw_bytes:>11,} "
            f"{self.locations:>9,} {self.location_bytes:>9,} "
            f"{self.match_percent:>6.0f}% {self.partial_percent:>7.0f}%"
        )


def run_session(
    spec: SessionSpec,
    seed: int = 2012,
    with_freeze: bool = False,
    scan_interval_ms: int = 60_000,
) -> SessionResult:
    """Simulate one participant-session and score it against ground truth."""
    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("researcher")
    profile = UserProfile(name=spec.name, lifestyle=spec.lifestyle, **spec.profile_overrides)
    device = sim.add_device(
        world_days=spec.days,
        with_email_app=True,
        user_profile=profile,
        propagation=DEPLOYMENT_PROPAGATION,
    )

    # Geolocation backend knows the user's world.
    service = GeolocationService()
    for group in device.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    collector.node.add_service(GeolocationBridge(service))

    # The SD-card log: every sanitized scan, recorded node-locally the
    # moment the experiment context exists.
    sdcard_log: List[Tuple[float, Dict[str, float]]] = []

    def attach_logger(context) -> None:
        context.broker.subscribe(
            localization.CHANNEL_FILTERED,
            lambda msg: sdcard_log.append((msg["time"], msg["vector"])),
            owner="local:sdcard",
        )

    device.node.on_context_added.append(attach_logger)

    # Connectivity constraints of this participant.
    if not spec.has_mobile_data:
        device.phone.set_data_enabled(False)
    if not spec.wifi_enabled:
        # No Wi-Fi *internet* for this participant (scanning still works:
        # the localization app depends on it).
        device.phone.suppress_wifi_association(True)

    # Disruptions.
    extra = []
    if spec.trip_abroad_days is not None:
        extra.extend(trip_abroad(*spec.trip_abroad_days))
    if spec.cell_outage_days is not None:
        extra.extend(cell_outage(*spec.cell_outage_days))
    disruption_rng = sim.streams.stream(f"disruptions/{spec.name}")
    plan = standard_plan(
        disruption_rng,
        spec.days,
        reboot_rate_per_day=spec.reboot_rate_per_day,
        update_days=list(spec.update_days),
        extra=extra,
    )

    sim.start()
    sim.assign(collector, [device])
    experiment = localization.build_experiment(
        interval_ms=scan_interval_ms, with_freeze=with_freeze, **DBSCAN_PARAMS
    )
    context = collector.node.deploy(experiment, [device.jid])

    clustering_source = experiment.device_scripts["clustering"]
    plan.schedule(
        sim.kernel,
        device.phone,
        on_script_update=lambda: collector.node.push_script(
            localization.EXPERIMENT_ID, "clustering", clustering_source
        ),
    )

    sim.run(days=spec.days)

    # Score against ground truth, exactly as the paper did.
    database = context.scripts["collect"].namespace["database"]
    collected = [Cluster.from_message(entry) for entry in database]
    truth = cluster_stream(sdcard_log, **DBSCAN_PARAMS)
    report = match_clusters(truth, collected)

    raw_bytes = sum(
        message_size_bytes({"time": t, "vector": v}) for t, v in sdcard_log
    )
    location_bytes = sum(message_size_bytes(entry) for entry in database)
    return SessionResult(
        name=spec.name,
        scans=len(sdcard_log),
        raw_bytes=raw_bytes,
        locations=len(database),
        location_bytes=location_bytes,
        match_percent=report.match_percent,
        partial_percent=report.partial_percent,
        truth_clusters=report.total,
        expired_messages=device.node.buffer.expired,
        report=report,
    )


def run_deployment(
    sessions: Tuple[SessionSpec, ...] = DEFAULT_SESSIONS,
    seed: int = 2012,
    with_freeze: bool = False,
    scan_interval_ms: int = 60_000,
) -> List[SessionResult]:
    """Run every session (each in its own simulation, like the real
    deployment's independent phones)."""
    return [
        run_session(spec, seed=seed + index, with_freeze=with_freeze,
                    scan_interval_ms=scan_interval_ms)
        for index, spec in enumerate(sessions)
    ]


def format_table(results: List[SessionResult]) -> str:
    """Render results in the paper's Table 4 layout."""
    lines = [
        f"{'User':<8} {'Scans':>7} {'Size':>11} {'Locations':>9} {'Size':>9} {'Match':>7} {'Partial':>8}",
    ]
    for result in results:
        lines.append(result.row())
    total_scans = sum(r.scans for r in results)
    total_raw = sum(r.raw_bytes for r in results)
    total_locations = sum(r.locations for r in results)
    total_reduced = sum(r.location_bytes for r in results)
    reduction = 100.0 * (1.0 - total_reduced / total_raw) if total_raw else 0.0
    lines.append(
        f"{'total':<8} {total_scans:>7,} {total_raw:>11,} "
        f"{total_locations:>9,} {total_reduced:>9,}   data reduction {reduction:.1f}%"
    )
    return "\n".join(lines)
