"""The RogueFinder application (Section 5.1, Listings 1 & 2).

The AnonySense comparison app: "sends Wi-Fi access point scans to the
server once per minute, but only if the device is within a given
geographical location (represented by a polygon)."

The Pogo version illustrates three things the paper calls out:

* subscription ``release()``/``renew()`` toggling the Wi-Fi scanning
  sensor on and off with the user's location (lines 9–16 of Listing 2);
* ``locationInPolygon`` implemented *in the script* because it is not
  part of the 11-method API ("we had to implement the
  locationInPolygon function to simulate AnonyTL's In construct");
* a second, tiny collector script to get the data off the device.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.deployment import Experiment

EXPERIMENT_ID = "roguefinder"


def build_roguefinder_script(
    polygon: Sequence[Tuple[float, float]],
    scan_interval_ms: int = 60_000,
    location_interval_ms: int = 120_000,
) -> str:
    """The device script, parameterized by the target polygon.

    ``polygon`` is a sequence of (lat, lon) vertices.
    """
    polygon_literal = ", ".join(
        f"{{'lat': {lat!r}, 'lon': {lon!r}}}" for lat, lon in polygon
    )
    return f'''setDescription('RogueFinder: report AP scans while inside the target area')

polygon = [{polygon_literal}]


def handle_scan(msg):
    publish('rogue-scans', msg)


subscription = subscribe('wifi-scan', handle_scan, {{'interval': {scan_interval_ms}}})
subscription.release()


def location_in_polygon(msg, poly):
    x = msg['lon']
    y = msg['lat']
    inside = False
    count = len(poly)
    for i in range(count):
        ax = poly[i]['lon']
        ay = poly[i]['lat']
        bx = poly[(i + 1) % count]['lon']
        by = poly[(i + 1) % count]['lat']
        if (ay > y) != (by > y):
            if x < (bx - ax) * (y - ay) / (by - ay) + ax:
                inside = not inside
    return inside


def handle_location(msg):
    if location_in_polygon(msg, polygon):
        subscription.renew()
    else:
        subscription.release()


subscribe('locations', handle_location, {{'interval': {location_interval_ms}}})
'''


def build_collect_script() -> str:
    """The collector script — five lines, as in Table 2."""
    return '''scans = []

def handle(msg):
    scans.append(msg)
    logTo('rogue', json(msg))

subscribe('rogue-scans', handle)
'''


def build_experiment(
    polygon: Sequence[Tuple[float, float]],
    scan_interval_ms: int = 60_000,
    location_interval_ms: int = 120_000,
) -> Experiment:
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="Report Wi-Fi scans inside a geofenced polygon",
        device_scripts={
            "roguefinder": build_roguefinder_script(
                polygon, scan_interval_ms, location_interval_ms
            ),
        },
        collector_scripts={"collect": build_collect_script()},
    )
