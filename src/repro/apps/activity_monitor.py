"""Activity detection: a context-inference application on Pogo.

The paper's related-work systems (Jigsaw, Mobicon) ship built-in
accelerometer classifiers; Pogo's position is that such processing
belongs *in scripts* ("The flexibility of our scripting environment
allows us to write complex sensing applications", Section 4.1).  This
application demonstrates that: a device script classifies accelerometer
windows into still/moving with a hysteresis filter and reports only the
*transitions* — another instance of on-line processing slashing the
transferred data volume.

Channels: consumes ``accel``; publishes ``activity-transitions``.
"""

from __future__ import annotations

from ..core.deployment import Experiment

EXPERIMENT_ID = "activity-monitor"

CHANNEL_TRANSITIONS = "activity-transitions"


def build_classifier_script(
    interval_ms: int = 5_000,
    moving_threshold: float = 0.15,
    hysteresis_windows: int = 3,
) -> str:
    """The device script: classify windows, report state transitions.

    A window with acceleration std above ``moving_threshold`` g counts
    as movement; the state flips only after ``hysteresis_windows``
    consecutive windows agree (debouncing sensor noise).
    """
    return f'''setDescription('Classifies movement from accelerometer windows')

MOVING_THRESHOLD = {moving_threshold}
HYSTERESIS = {hysteresis_windows}

state = {{'current': 'still', 'streak': 0, 'candidate': 'still', 'since': 0}}


def classify(msg):
    return 'moving' if msg['std'] >= MOVING_THRESHOLD else 'still'


def handle_window(msg):
    observed = classify(msg)
    if observed == state['current']:
        state['streak'] = 0
        state['candidate'] = observed
        return
    if observed == state['candidate']:
        state['streak'] += 1
    else:
        state['candidate'] = observed
        state['streak'] = 1
    if state['streak'] >= HYSTERESIS:
        previous = state['current']
        state['current'] = observed
        state['streak'] = 0
        publish('activity-transitions', {{
            'from': previous,
            'to': observed,
            'at': msg['timestamp'],
            'dwell_ms': msg['timestamp'] - state['since'],
        }})
        state['since'] = msg['timestamp']


subscribe('accel', handle_window, {{'interval': {interval_ms}}})
'''


def build_collect_script() -> str:
    return '''setDescription('Collects activity transitions from the fleet')

transitions = []


def handle(msg):
    transitions.append(msg)
    logTo('activity', json(msg))


subscribe('activity-transitions', handle)
'''


def build_experiment(
    interval_ms: int = 5_000,
    moving_threshold: float = 0.15,
    hysteresis_windows: int = 3,
) -> Experiment:
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="On-device activity classification, transitions only",
        device_scripts={
            "classifier": build_classifier_script(
                interval_ms, moving_threshold, hysteresis_windows
            ),
        },
        collector_scripts={"collect": build_collect_script()},
    )
