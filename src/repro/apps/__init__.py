"""Ready-made Pogo applications (the paper's example experiments)."""

from . import (
    activity_monitor,
    battery_monitor,
    contact_tracing,
    deployment_study,
    localization,
    noise_map,
    roguefinder,
)

__all__ = [
    "activity_monitor",
    "battery_monitor",
    "contact_tracing",
    "deployment_study",
    "localization",
    "noise_map",
    "roguefinder",
]
