"""The battery-monitoring experiment: the Table 3 / Figure 4 workload.

"In the experiments where Pogo was running it was sampling the battery
sensor every minute.  Because of the synchronization mechanism these
values were reported in batches of five whenever the e-mail application
checked for updates" (Section 5.2).

There is no device script at all: the collector's subscription to the
``battery`` channel propagates to every device and switches the battery
sensor on — the cross-network sensor activation of Section 4.2.
"""

from __future__ import annotations

from ..core.deployment import Experiment

EXPERIMENT_ID = "battery-monitor"


def build_collect_script(interval_ms: int = 60_000) -> str:
    return f'''setDescription('Fleet-wide battery voltage collection')

readings = []


def handle(msg):
    readings.append(msg)
    logTo('battery', json(msg))


subscribe('battery', handle, {{'interval': {interval_ms}}})
'''


def build_experiment(interval_ms: int = 60_000) -> Experiment:
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="Sample battery voltage across the fleet",
        collector_scripts={"collect": build_collect_script(interval_ms)},
    )
