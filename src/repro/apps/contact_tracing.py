"""Opportunistic contact tracing over Wi-Fi anchors.

The MOSDEN line of work (see PAPERS.md) argues middleware must support
collaborative, opportunistic campaigns where many devices contribute to
one derived dataset.  Contact tracing is the canonical instance: two
phones that see the same strong Wi-Fi access point at overlapping times
were plausibly co-located.

* the device script records the strongest BSSID of every scan as an
  "anchor" and periodically publishes the distinct anchors seen since the
  last report (on-line reduction: anchors, never raw scans, leave the
  phone);
* the collector script inverts the anchor → device mapping and counts,
  per device pair, how many distinct anchors both have reported.  All
  collector state is order-insensitive (sets and sums), so the derived
  contact graph is identical no matter how message deliveries interleave
  — which is what lets sharded runs reproduce solo reports byte for byte.

Channels: consumes ``wifi-scan``; publishes ``contact-beacons``.
"""

from __future__ import annotations

from ..core.deployment import Experiment

EXPERIMENT_ID = "contact-tracing"

CHANNEL_BEACONS = "contact-beacons"


def build_tracer_script(
    scan_interval_ms: int = 120_000,
    report_every_ms: int = 10 * 60_000,
) -> str:
    """Device script: distill Wi-Fi scans into co-location anchors."""
    return f'''setDescription('Publishes co-location anchors from Wi-Fi scans')

seen = []


def handle_scan(msg):
    aps = msg['aps']
    if not aps:
        return
    anchor = aps[0]['bssid']
    if anchor not in seen:
        seen.append(anchor)


def report():
    setTimeout(report, {report_every_ms})
    if not seen:
        return
    publish('contact-beacons', {{'anchors': list(seen)}})
    seen.clear()


def start():
    setTimeout(report, {report_every_ms})


subscribe('wifi-scan', handle_scan, {{'interval': {scan_interval_ms}}})
'''


def build_collect_script() -> str:
    """Collector script: build the pairwise contact graph."""
    return '''setDescription('Builds the pairwise co-location graph from anchors')

counters = {'beacons': 0}
anchors = {}
contacts = {}


def handle(msg):
    counters['beacons'] += 1
    device = msg.get('_device')
    if device is None:
        return
    for anchor in msg['anchors']:
        devices = anchors.get(anchor)
        if devices is None:
            devices = []
            anchors[anchor] = devices
        if device in devices:
            continue
        for other in devices:
            if device < other:
                pair = device + '|' + other
            else:
                pair = other + '|' + device
            contacts[pair] = contacts.get(pair, 0) + 1
        devices.append(device)


subscribe('contact-beacons', handle)
'''


def build_experiment(
    scan_interval_ms: int = 120_000,
    report_every_ms: int = 10 * 60_000,
) -> Experiment:
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="Opportunistic contact tracing from shared Wi-Fi anchors",
        device_scripts={
            "tracer": build_tracer_script(scan_interval_ms, report_every_ms),
        },
        collector_scripts={"collect": build_collect_script()},
    )
