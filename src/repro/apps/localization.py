"""The Wi-Fi localization application (Section 4.1, Figure 1, Table 4).

Three cooperating Pogo scripts:

* ``scan`` (device) — requests a Wi-Fi scan every minute, removes locally
  administered access points, normalizes RSSI to [0, 1] (0 ↦ −100 dBm,
  1 ↦ −55 dBm) and publishes the sanitized vector on ``filtered-scans``;
* ``clustering`` (device) — the modified sliding-window DBSCAN; closed
  clusters (entry/exit timestamps + the characterizing sample) go to
  ``clusters``.  The core algorithm is embedded verbatim from
  :mod:`repro.analysis.clustering`, so the deployed code and the offline
  ground-truth pass cannot diverge;
* ``collect`` (collector) — receives clusters from the whole fleet,
  resolves each to a (lat, lon) via the geolocation service and appends
  the annotated place to its database.

Script sources are built by functions so experiments can tweak the
parameters (interval, DBSCAN eps/min_pts/window) and — for the
freeze/thaw ablation — enable state persistence across interruptions.
"""

from __future__ import annotations

from ..analysis.clustering import clustering_script_core
from ..core.deployment import Experiment

EXPERIMENT_ID = "localization"

#: Channel names (Figure 1's data flow).
CHANNEL_RAW = "wifi-scan"
CHANNEL_FILTERED = "filtered-scans"
CHANNEL_CLUSTERS = "clusters"


def build_scan_script(interval_ms: int = 60_000) -> str:
    """The ``scan`` script: sanitize and normalize raw scans."""
    return f'''setDescription('Scans Wi-Fi, drops locally administered APs, normalizes RSSI')

SCAN_INTERVAL_MS = {interval_ms}
NORMALIZE_FLOOR_DBM = -100.0
NORMALIZE_CEIL_DBM = -55.0


def locally_administered(bssid):
    first_octet = int(bssid[0:2], 16)
    return (first_octet & 0x02) != 0


def normalize(rssi_dbm):
    span = NORMALIZE_CEIL_DBM - NORMALIZE_FLOOR_DBM
    value = (rssi_dbm - NORMALIZE_FLOOR_DBM) / span
    if value < 0.0:
        value = 0.0
    if value > 1.0:
        value = 1.0
    return value


def handle_scan(msg):
    vector = {{}}
    for ap in msg['aps']:
        if locally_administered(ap['bssid']):
            continue
        vector[ap['bssid']] = normalize(ap['rssi'])
    publish('filtered-scans', {{'time': msg['timestamp'], 'vector': vector}})


subscribe('wifi-scan', handle_scan, {{'interval': SCAN_INTERVAL_MS}})
'''


def build_clustering_script(
    eps_similarity: float = 0.55,
    min_pts: int = 5,
    window: int = 60,
    with_freeze: bool = False,
) -> str:
    """The ``clustering`` script: windowed DBSCAN over filtered scans.

    ``with_freeze=True`` produces the post-deployment version that
    freezes its state after every sample and thaws on start — the fix the
    paper added after observing interrupted clusters (Section 5.3).
    """
    core = clustering_script_core()
    freeze_restore = """
saved = thaw()
if saved is not None:
    dbscan.restore(saved)
""" if with_freeze else ""
    freeze_step = """
    freeze(dbscan.state())""" if with_freeze else ""
    return f'''setDescription('Clusters Wi-Fi scans into dwell locations (windowed DBSCAN)')

{core}

EPS_SIMILARITY = {eps_similarity}
MIN_PTS = {min_pts}
WINDOW = {window}

dbscan = WindowedDBSCAN(EPS_SIMILARITY, MIN_PTS, WINDOW)
{freeze_restore}

def emit_cluster(cluster):
    publish('clusters', cluster)


dbscan.on_cluster = emit_cluster


def handle_filtered(msg):
    dbscan.add(msg['time'], msg['vector']){freeze_step}


subscribe('filtered-scans', handle_filtered)
'''


def build_collect_script() -> str:
    """The ``collect`` script (collector side): geolocate and store."""
    return '''setDescription('Collects clusters, annotates with geolocation, stores them')

database = []
pending = {}
counter = [0]


def store(qid, fix):
    cluster = pending.pop(qid, None)
    if cluster is None:
        return
    cluster['place'] = fix
    database.append(cluster)
    logTo('places', json(cluster))


def handle_cluster(msg):
    counter[0] += 1
    qid = counter[0]
    pending[qid] = msg.copy()
    publish('geo-lookup', {'id': qid, 'vector': msg['representative']})

    def give_up():
        store(qid, None)

    setTimeout(give_up, 30 * 1000)


def handle_fix(msg):
    store(msg['id'], msg['fix'])


subscribe('clusters', handle_cluster)
subscribe('geo-result', handle_fix)
'''


def build_experiment(
    interval_ms: int = 60_000,
    eps_similarity: float = 0.55,
    min_pts: int = 5,
    window: int = 60,
    with_freeze: bool = False,
) -> Experiment:
    """The complete localization experiment, ready to deploy."""
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="Find locations where users dwell, via Wi-Fi clustering",
        device_scripts={
            "scan": build_scan_script(interval_ms),
            "clustering": build_clustering_script(
                eps_similarity, min_pts, window, with_freeze
            ),
        },
        collector_scripts={"collect": build_collect_script()},
    )
