"""Community noise mapping: the urban-sensing workload of the intro.

The paper motivates Pogo with community sensing (refs [5, 20]); the
textbook instance is a city noise map.  This application demonstrates the
middleware's multi-sensor composition:

* the device script joins **two** sensor streams — sound levels from the
  microphone and coarse position fixes — and aggregates them on-device
  into per-cell statistics (count/mean/max per ~100 m grid cell),
  publishing a digest every ``report_every_ms`` instead of raw audio
  (on-line reduction again, and far better for privacy than shipping
  sound);
* the collector script merges digests from the whole fleet into one map.

Channels: consumes ``audio`` and ``locations``; publishes
``noise-digest``.
"""

from __future__ import annotations

from ..core.deployment import Experiment

EXPERIMENT_ID = "noise-map"

CHANNEL_DIGEST = "noise-digest"


def build_mapper_script(
    audio_interval_ms: int = 30_000,
    location_interval_ms: int = 120_000,
    report_every_ms: int = 15 * 60_000,
    cell_size_deg: float = 0.001,
) -> str:
    """Device script: join audio + location into per-cell aggregates."""
    return f'''setDescription('Aggregates ambient noise levels into a local grid')

CELL = {cell_size_deg}

state = {{'fix': None}}
cells = {{}}


def cell_key(fix):
    lat = math.floor(fix['lat'] / CELL) * CELL
    lon = math.floor(fix['lon'] / CELL) * CELL
    return str(round(lat, 6)) + ',' + str(round(lon, 6))


def handle_fix(msg):
    state['fix'] = msg


def handle_audio(msg):
    fix = state['fix']
    if fix is None:
        return
    key = cell_key(fix)
    cell = cells.get(key)
    if cell is None:
        cell = {{'n': 0, 'sum': 0.0, 'max': 0.0}}
        cells[key] = cell
    cell['n'] += 1
    cell['sum'] += msg['db']
    if msg['db'] > cell['max']:
        cell['max'] = msg['db']


def report():
    setTimeout(report, {report_every_ms})
    if not cells:
        return
    digest = {{}}
    for key, cell in cells.items():
        digest[key] = {{
            'n': cell['n'],
            'mean': round(cell['sum'] / cell['n'], 1),
            'max': round(cell['max'], 1),
        }}
    publish('noise-digest', {{'cells': digest}})
    cells.clear()


def start():
    setTimeout(report, {report_every_ms})


subscribe('audio', handle_audio, {{'interval': {audio_interval_ms}}})
subscribe('locations', handle_fix, {{'interval': {location_interval_ms}}})
'''


def build_collect_script() -> str:
    """Collector script: merge per-device digests into the city map."""
    return '''setDescription('Merges noise digests from the fleet into one map')

noise_map = {}
digests = []


def handle(msg):
    digests.append(msg)
    for key, stats in msg['cells'].items():
        cell = noise_map.get(key)
        if cell is None:
            cell = {'n': 0, 'sum': 0.0, 'max': 0.0, 'devices': []}
            noise_map[key] = cell
        cell['n'] += stats['n']
        cell['sum'] += stats['mean'] * stats['n']
        if stats['max'] > cell['max']:
            cell['max'] = stats['max']
        device = msg.get('_device')
        if device is not None and device not in cell['devices']:
            cell['devices'].append(device)


subscribe('noise-digest', handle)
'''


def build_experiment(
    audio_interval_ms: int = 30_000,
    location_interval_ms: int = 120_000,
    report_every_ms: int = 15 * 60_000,
) -> Experiment:
    return Experiment(
        experiment_id=EXPERIMENT_ID,
        description="Community noise map from fleet microphones",
        device_scripts={
            "mapper": build_mapper_script(
                audio_interval_ms, location_interval_ms, report_every_ms
            ),
        },
        collector_scripts={"collect": build_collect_script()},
    )
