"""Terminal plotting: render time series and activity tracks as text.

The paper's figures are oscilloscope-style traces (Figure 3) and activity
timelines (Figure 4).  This module renders both as ASCII so benchmarks
and examples can *show* the reproduced figure, not only its extracted
numbers — with no plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.trace import Interval, TimeSeries

#: Vertical fill characters from empty to full.
_FILL = " ▁▂▃▄▅▆▇█"


def render_series(
    series: TimeSeries,
    width: int = 78,
    height: int = 10,
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
    y_label: str = "W",
    annotations: Optional[Sequence[Tuple[float, str]]] = None,
) -> str:
    """Render a (time, value) series as an ASCII area chart.

    ``annotations`` are (time_ms, label) markers drawn under the x-axis
    (Figure 3's a/b/c/d instants).
    """
    if len(series) == 0:
        return "(empty series)"
    t0 = series.times[0] if start_ms is None else start_ms
    t1 = series.times[-1] if end_ms is None else end_ms
    if t1 <= t0:
        raise ValueError("empty time window")
    window = series.window(t0, t1)
    if len(window) == 0:
        return "(no samples in window)"

    # Downsample to columns by taking the max per bucket (peaks matter
    # in power traces; a mean would hide the blips).
    columns = [0.0] * width
    for t, v in window:
        index = min(int((t - t0) / (t1 - t0) * width), width - 1)
        columns[index] = max(columns[index], v)
    peak = max(columns) or 1.0

    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold_hi = peak * row / height
        threshold_lo = peak * (row - 1) / height
        line = []
        for value in columns:
            if value >= threshold_hi:
                line.append(_FILL[-1])
            elif value <= threshold_lo:
                line.append(" ")
            else:
                frac = (value - threshold_lo) / (threshold_hi - threshold_lo)
                line.append(_FILL[max(1, min(8, int(frac * 8) + 1))])
        label = f"{threshold_hi:6.2f} {y_label} " if row in (height, 1) else " " * (8 + len(y_label))
        rows.append(label + "|" + "".join(line))

    axis = " " * (8 + len(y_label)) + "+" + "-" * width
    rows.append(axis)
    footer = [" "] * (width + 1)
    if annotations:
        for time_ms, label in annotations:
            if not t0 <= time_ms <= t1:
                continue
            index = min(int((time_ms - t0) / (t1 - t0) * width), width - 1)
            for offset, ch in enumerate(label):
                if index + offset < len(footer):
                    footer[index + offset] = ch
    rows.append(" " * (8 + len(y_label)) + "".join(footer))
    duration_s = (t1 - t0) / 1000.0
    rows.append(" " * (8 + len(y_label)) + f"0 s {'':<{max(0, width - 12)}}{duration_s:6.1f} s")
    return "\n".join(rows)


def render_tracks(
    tracks: Sequence[Tuple[str, List[Interval]]],
    start_ms: float,
    end_ms: float,
    width: int = 78,
) -> str:
    """Render activity tracks as aligned block rows (Figure 4 style)."""
    if end_ms <= start_ms:
        raise ValueError("empty time window")
    label_width = max((len(name) for name, _ in tracks), default=0) + 1
    lines: List[str] = []
    for name, intervals in tracks:
        cells = [" "] * width
        for interval in intervals:
            if interval.end < start_ms or interval.start > end_ms:
                continue
            first = max(0, int((interval.start - start_ms) / (end_ms - start_ms) * width))
            last = min(width - 1, int((interval.end - start_ms) / (end_ms - start_ms) * width))
            for i in range(first, last + 1):
                cells[i] = "█"
        lines.append(f"{name:<{label_width}}|" + "".join(cells) + "|")
    minutes = (end_ms - start_ms) / 60_000.0
    lines.append(f"{'':<{label_width}} 0 min{'':<{max(0, width - 16)}}{minutes:6.1f} min")
    return "\n".join(lines)
