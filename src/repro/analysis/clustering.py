"""Place clustering: the modified sliding-window DBSCAN from Section 4.1.

"The clustering.js script ... extracts clusters (locations) using a
modified version of the DBSCAN clustering algorithm.  The modification in
this case is that we use a sliding window of 60 samples from which we
extract core objects.  Clusters are 'closed' whenever a user moves away
from the place it represents (when a sample is found that is not
reachable from the cluster).  The distance metric used is the cosine
coefficient.  When a cluster is closed, a sample is selected that best
characterizes the cluster [the nearest neighbour to the mean of all scan
results] and sent to the server along with entry and exit timestamps."

Samples are scan vectors: ``{bssid: normalized_rssi}`` (see
:func:`repro.world.rssi.normalize_rssi`).  The streaming algorithm:

* keep the last ``window`` samples;
* with no open cluster, a new sample that is a **core object** (at least
  ``min_pts`` window samples within ``eps``) opens a cluster seeded with
  the trailing run of reachable samples;
* with an open cluster, a reachable sample joins it; the first
  unreachable sample **closes** it (the user left);
* a closed cluster is emitted only if it contains a core object
  (``min_pts`` members), which rejects travel noise.

IMPORTANT — sandbox compatibility: everything in this module between the
``SCRIPT SAFE BEGIN/END`` markers is written to run inside the Pogo
script sandbox (builtins + ``math`` only, no imports, no annotations), so
the deployable ``clustering`` script embeds this *exact* code via
:func:`clustering_script_core`.  The on-device script and the offline
ground-truth pass are therefore the same algorithm by construction.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

# --- SCRIPT SAFE BEGIN -------------------------------------------------


def cosine_coefficient(a, b):
    """Cosine similarity of two sparse scan vectors ({bssid: weight})."""
    if not a or not b:
        return 0.0
    dot = 0.0
    for key, value in a.items():
        other = b.get(key)
        if other is not None:
            dot += value * other
    if dot == 0.0:
        return 0.0
    norm_a = sum(v * v for v in a.values()) ** 0.5
    norm_b = sum(v * v for v in b.values()) ** 0.5
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def mean_vector(vectors):
    """Element-wise mean of sparse vectors."""
    if not vectors:
        return {}
    sums = {}
    for vector in vectors:
        for key, value in vector.items():
            sums[key] = sums.get(key, 0.0) + value
    count = float(len(vectors))
    return {key: value / count for key, value in sums.items()}


def nearest_to_vector(vectors, target):
    """Index of the vector most similar to ``target``."""
    best_index = 0
    best_sim = -1.0
    for index, vector in enumerate(vectors):
        sim = cosine_coefficient(vector, target)
        if sim > best_sim:
            best_sim = sim
            best_index = index
    return best_index


def nearest_to_mean(vectors):
    """Index of the vector most similar to the mean (the characterization
    sample: "the nearest neighbour to the mean of all scan results")."""
    return nearest_to_vector(vectors, mean_vector(vectors))


def add_into(sums, vector):
    """Accumulate ``vector`` into the running sum dict ``sums``."""
    for key, value in vector.items():
        sums[key] = sums.get(key, 0.0) + value


class WindowedDBSCAN:
    """Streaming, windowed DBSCAN over scan vectors.

    Feed timestamped samples with ``add(time_ms, vector)``; closed
    clusters accumulate in ``closed`` (and are handed to ``on_cluster``
    if set).  Call ``flush()`` to force-close an open cluster (end of
    stream — or a mid-deployment interruption, which is exactly how the
    paper lost cluster halves before freeze/thaw existed).
    """

    def __init__(self, eps_similarity=0.55, min_pts=5, window=60):
        self.eps_similarity = eps_similarity
        self.min_pts = min_pts
        self.window_size = window
        self.window = []  # list of (time_ms, vector), newest last
        self.current = None  # open cluster state dict or None
        self.closed = []
        self.on_cluster = None
        self.samples_seen = 0

    # -- persistence hooks (freeze/thaw) -------------------------------
    #: Cap on cluster members kept in a frozen snapshot.  A long dwell
    #: accumulates hundreds of members; the exact running mean survives
    #: via (sum, count), so only a bounded tail of members is needed to
    #: pick a (near-exact) representative after a restore.  This keeps
    #: freeze() O(window) instead of O(dwell length).
    FREEZE_MEMBER_CAP = 60

    def state(self):
        """Serializable snapshot of the mutable state (bounded size)."""
        current = None
        if self.current is not None:
            cluster = self.current
            current = {
                "entry": cluster["entry"],
                "exit": cluster["exit"],
                "count": cluster["count"],
                "sum": dict(cluster["sum"]),
                "members": [
                    [t, dict(v)] for t, v in cluster["members"][-self.FREEZE_MEMBER_CAP:]
                ],
                "centroid": dict(cluster["centroid"]),
            }
        return {
            "window": [[t, dict(v)] for t, v in self.window],
            "current": current,
            "samples_seen": self.samples_seen,
        }

    def restore(self, state):
        if not state:
            return
        self.window = [(item[0], dict(item[1])) for item in state.get("window", [])]
        current = state.get("current")
        if current is not None:
            current = dict(current)
            current["members"] = [[t, dict(v)] for t, v in current["members"]]
        self.current = current
        self.samples_seen = state.get("samples_seen", 0)

    # -- core algorithm --------------------------------------------------
    def _similar(self, a, b):
        return cosine_coefficient(a, b) >= self.eps_similarity

    def _reachable_from_current(self, vector):
        cluster = self.current
        if self._similar(vector, cluster["centroid"]):
            return True
        for member in cluster["members"][-5:]:
            if self._similar(vector, member[1]):
                return True
        return False

    def add(self, time_ms, vector):
        """Process one scan sample."""
        self.samples_seen += 1
        self.window.append((time_ms, vector))
        if len(self.window) > self.window_size:
            self.window.pop(0)
        if self.current is not None:
            if self._reachable_from_current(vector):
                self._join(time_ms, vector)
            else:
                self._close()
                self._try_open(time_ms, vector)
        else:
            self._try_open(time_ms, vector)

    def _join(self, time_ms, vector):
        cluster = self.current
        cluster["members"].append([time_ms, vector])
        cluster["exit"] = time_ms
        cluster["count"] += 1
        add_into(cluster["sum"], vector)
        # Incremental centroid update keeps reachability stable.
        cluster["centroid"] = mean_vector([m[1] for m in cluster["members"][-20:]])

    def _try_open(self, time_ms, vector):
        neighbors = []
        for sample_time, sample_vector in self.window[:-1]:
            if self._similar(vector, sample_vector):
                neighbors.append([sample_time, sample_vector])
        if len(neighbors) + 1 < self.min_pts:
            return
        # Seed with the trailing *contiguous* run of reachable samples so
        # the entry timestamp reflects when the user actually arrived.
        members = []
        for sample_time, sample_vector in reversed(self.window[:-1]):
            if self._similar(vector, sample_vector):
                members.append([sample_time, sample_vector])
            else:
                break
        members.reverse()
        members.append([time_ms, vector])
        sums = {}
        for _member_time, member_vector in members:
            add_into(sums, member_vector)
        self.current = {
            "entry": members[0][0],
            "exit": time_ms,
            "count": len(members),
            "sum": sums,
            "members": members,
            "centroid": mean_vector([m[1] for m in members]),
        }

    def _close(self):
        cluster = self.current
        self.current = None
        if cluster is None or cluster["count"] < self.min_pts:
            return None
        # The characterization sample: nearest neighbour to the mean of
        # *all* scan results.  The mean is exact via the running sum even
        # when the member list was truncated by a freeze/restore.
        count = float(cluster["count"])
        mean = {key: value / count for key, value in cluster["sum"].items()}
        vectors = [m[1] for m in cluster["members"]]
        representative_index = nearest_to_vector(vectors, mean)
        result = {
            "entry": cluster["entry"],
            "exit": cluster["exit"],
            "samples": cluster["count"],
            "representative": cluster["members"][representative_index][1],
        }
        self.closed.append(result)
        if self.on_cluster is not None:
            self.on_cluster(result)
        return result

    def flush(self):
        """Force-close the open cluster (end of stream / interruption)."""
        return self._close()


# --- SCRIPT SAFE END ---------------------------------------------------


def clustering_script_core() -> str:
    """Source text of the sandbox-safe core, for embedding in scripts.

    The deployable ``clustering`` script is built from exactly this code,
    so the device and the offline ground-truth pass cannot diverge.
    """
    parts = [
        inspect.getsource(cosine_coefficient),
        inspect.getsource(mean_vector),
        inspect.getsource(nearest_to_vector),
        inspect.getsource(nearest_to_mean),
        inspect.getsource(add_into),
        inspect.getsource(WindowedDBSCAN),
    ]
    return "\n\n".join(parts)


@dataclass(frozen=True)
class Cluster:
    """A closed cluster in analysis-friendly form."""

    entry_ms: float
    exit_ms: float
    samples: int
    representative: Dict[str, float]

    @property
    def duration_ms(self) -> float:
        return self.exit_ms - self.entry_ms

    @classmethod
    def from_message(cls, message: Dict[str, Any]) -> "Cluster":
        return cls(
            entry_ms=float(message["entry"]),
            exit_ms=float(message["exit"]),
            samples=int(message.get("samples", 0)),
            representative=dict(message.get("representative", {})),
        )


def cluster_stream(
    samples: Sequence[Tuple[float, Dict[str, float]]],
    eps_similarity: float = 0.55,
    min_pts: int = 5,
    window: int = 60,
) -> List[Cluster]:
    """Run the full algorithm over a complete scan trace (ground truth).

    This is the paper's post-processing step: "we ran our clustering
    algorithm over the raw traces and compared the output with what was
    received at the collector node."
    """
    dbscan = WindowedDBSCAN(eps_similarity, min_pts, window)
    for time_ms, vector in samples:
        dbscan.add(time_ms, vector)
    dbscan.flush()
    return [Cluster.from_message(c) for c in dbscan.closed]
