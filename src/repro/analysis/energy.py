"""Energy-trace analysis: integrating power and segmenting 3G tails.

Figure 3 annotates four instants on a power trace:

* **a** — the modem is triggered (ramp-up begins);
* **b** — data transmission ends;
* **c** — the modem drops from DCH (high) to FACH (medium), ~6 s later;
* **d** — the modem returns to idle, ~53.5 s after c (on KPN).

"The time from b to d ... is commonly referred to as the *tail-energy* of
a transmission."  This module recovers those instants (and the energy of
each phase) from a sampled power trace, the way one would from the
paper's shunt measurements — by thresholding against the known state
power levels — and can also compute them exactly from the modem's state
trace for cross-validation in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..device.radio import CarrierProfile
from ..sim.trace import TimeSeries, TraceRecorder


def series_energy_joules(series: TimeSeries, start_ms: Optional[float] = None, end_ms: Optional[float] = None) -> float:
    """Trapezoidal energy of a watts-vs-milliseconds series, in joules."""
    if start_ms is not None or end_ms is not None:
        series = series.window(
            start_ms if start_ms is not None else float("-inf"),
            end_ms if end_ms is not None else float("inf"),
        )
    return series.integrate() / 1000.0


@dataclass(frozen=True)
class TailSegmentation:
    """The a/b/c/d instants and per-phase energies of one transmission."""

    a_ramp_start_ms: float
    b_transfer_end_ms: float
    c_dch_end_ms: float
    d_fach_end_ms: float
    ramp_energy_j: float
    transfer_energy_j: float
    dch_tail_energy_j: float
    fach_tail_energy_j: float

    @property
    def tail_duration_ms(self) -> float:
        """b → d: the paper's tail ("59.5 seconds in this example")."""
        return self.d_fach_end_ms - self.b_transfer_end_ms

    @property
    def tail_energy_j(self) -> float:
        return self.dch_tail_energy_j + self.fach_tail_energy_j

    @property
    def dch_tail_ms(self) -> float:
        return self.c_dch_end_ms - self.b_transfer_end_ms

    @property
    def fach_tail_ms(self) -> float:
        return self.d_fach_end_ms - self.c_dch_end_ms


def segment_tail_from_series(
    series: TimeSeries,
    profile: CarrierProfile,
    search_from_ms: float = 0.0,
) -> Optional[TailSegmentation]:
    """Find the first complete transmission+tail episode in a power trace.

    Thresholds sit between the known state power levels, as one would
    place them reading the scope trace by eye: anything above
    ``(fach + dch)/2`` is DCH/ramp territory, anything between
    ``(idle + fach)/2`` and the DCH threshold is FACH.
    """
    dch_threshold = (profile.fach_w + min(profile.ramp_w, profile.dch_w)) / 2.0
    fach_threshold = (profile.idle_w + profile.paging_w + profile.fach_w) / 2.0

    a = b = c = d = None
    # State machine over samples: idle -> high (ramp+transfer) -> ...
    phase = "idle"
    for time_ms, watts in series:
        if time_ms < search_from_ms:
            continue
        if phase == "idle":
            if watts >= dch_threshold:
                a = time_ms
                phase = "high"
        elif phase == "high":
            if watts < dch_threshold:
                # Mid-transfer dips do not occur in this model; leaving
                # the high band means the DCH tail expired.
                c = time_ms
                phase = "fach"
        elif phase == "fach":
            if watts < fach_threshold:
                d = time_ms
                break
            if watts >= dch_threshold:
                # A new transmission started during the tail; restart.
                phase = "high"
                c = None
    if a is None or c is None or d is None:
        return None
    # b (transfer end) cannot be read from power alone (DCH active and DCH
    # tail draw identically); reconstruct it as c minus the carrier's DCH
    # inactivity timeout, exactly how the paper annotates its figure.
    b = c - profile.dch_tail_ms
    return TailSegmentation(
        a_ramp_start_ms=a,
        b_transfer_end_ms=b,
        c_dch_end_ms=c,
        d_fach_end_ms=d,
        ramp_energy_j=series_energy_joules(series, a, min(a + profile.ramp_ms, b)),
        transfer_energy_j=series_energy_joules(series, min(a + profile.ramp_ms, b), b),
        dch_tail_energy_j=series_energy_joules(series, b, c),
        fach_tail_energy_j=series_energy_joules(series, c, d),
    )


def segment_tail_from_state_trace(
    trace: TraceRecorder,
    modem_name: str,
    profile: CarrierProfile,
    after_ms: float = 0.0,
) -> Optional[TailSegmentation]:
    """Exact segmentation from the modem's recorded state transitions."""
    a = b = c = d = None
    for event in trace.filter(source=modem_name):
        if event.time < after_ms:
            continue
        if event.kind == "state":
            old, new = event.data.get("old"), event.data.get("new")
            if old == "idle" and new == "ramp" and a is None:
                a = event.time
            elif old == "dch" and new == "fach" and a is not None and c is None:
                c = event.time
            elif old == "fach" and new == "idle" and c is not None:
                d = event.time
                break
        elif event.kind == "transfer_done" and a is not None and c is None:
            b = event.time
    if None in (a, b, c, d):
        return None
    dch_w, fach_w, ramp_w = profile.dch_w, profile.fach_w, profile.ramp_w
    ramp_end = min(a + profile.ramp_ms, b)
    return TailSegmentation(
        a_ramp_start_ms=a,
        b_transfer_end_ms=b,
        c_dch_end_ms=c,
        d_fach_end_ms=d,
        ramp_energy_j=ramp_w * (ramp_end - a) / 1000.0,
        transfer_energy_j=dch_w * (b - ramp_end) / 1000.0,
        dch_tail_energy_j=dch_w * (c - b) / 1000.0,
        fach_tail_energy_j=fach_w * (d - c) / 1000.0,
    )


def percent_increase(baseline: float, value: float) -> float:
    """Table 3's "Increase" column."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline
