"""Analysis: clustering, match scoring, SLOC counting, energy traces."""

from .clustering import (
    Cluster,
    WindowedDBSCAN,
    cluster_stream,
    clustering_script_core,
    cosine_coefficient,
    mean_vector,
    nearest_to_mean,
)
from .energy import (
    TailSegmentation,
    percent_increase,
    segment_tail_from_series,
    segment_tail_from_state_trace,
    series_energy_joules,
)
from .matching import (
    MATCH_EXACT,
    MATCH_MISSING,
    MATCH_PARTIAL,
    MatchReport,
    MatchResult,
    data_reduction_percent,
    match_clusters,
)
from .export import intervals_to_csv, rows_to_csv, series_to_csv, trace_to_csv
from .plotting import render_series, render_tracks
from .sloc import SlocCount, count_scripts, count_sloc

__all__ = [
    "Cluster",
    "WindowedDBSCAN",
    "cluster_stream",
    "clustering_script_core",
    "cosine_coefficient",
    "mean_vector",
    "nearest_to_mean",
    "TailSegmentation",
    "percent_increase",
    "segment_tail_from_series",
    "segment_tail_from_state_trace",
    "series_energy_joules",
    "MATCH_EXACT",
    "MATCH_MISSING",
    "MATCH_PARTIAL",
    "MatchReport",
    "MatchResult",
    "data_reduction_percent",
    "match_clusters",
    "count_scripts",
    "count_sloc",
    "SlocCount",
    "intervals_to_csv",
    "rows_to_csv",
    "series_to_csv",
    "trace_to_csv",
    "render_series",
    "render_tracks",
]
