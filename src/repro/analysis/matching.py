"""Cluster matching: scoring collected data against ground truth.

Table 4's quality metrics: "The 'match' column shows the percentage of
clusters found in the post-processed data set that exactly matched the
ones gathered by the collector node.  The 'partial' column shows the
percentage of [clusters] that were matched only partially due to the
problems described" — clusters truncated by interruptions (a later start
time, a missing half) or lost entirely to the 24-hour purge.

A ground-truth cluster *exactly* matches a collected cluster when they
represent the same place (similar representative vectors) and nearly the
same dwell interval; it *partially* matches when the place agrees and the
intervals overlap, but the boundaries disagree (the truncation signature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..sim.kernel import MINUTE
from .clustering import Cluster, cosine_coefficient

#: Default tolerances: clusters are sampled at one-minute granularity, so
#: boundary agreement within a few samples counts as exact.
DEFAULT_BOUNDARY_TOLERANCE_MS = 3 * MINUTE
DEFAULT_REPRESENTATIVE_SIMILARITY = 0.60

MATCH_EXACT = "exact"
MATCH_PARTIAL = "partial"
MATCH_MISSING = "missing"


@dataclass(frozen=True)
class MatchResult:
    """One ground-truth cluster's fate in the collected data set."""

    truth: Cluster
    collected: Cluster = None
    kind: str = MATCH_MISSING


@dataclass
class MatchReport:
    """Aggregate Table 4 row fragment for one user."""

    results: List[MatchResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def exact(self) -> int:
        return sum(1 for r in self.results if r.kind == MATCH_EXACT)

    @property
    def partial_or_exact(self) -> int:
        return sum(1 for r in self.results if r.kind != MATCH_MISSING)

    @property
    def match_percent(self) -> float:
        return 100.0 * self.exact / self.total if self.total else 0.0

    @property
    def partial_percent(self) -> float:
        return 100.0 * self.partial_or_exact / self.total if self.total else 0.0


def _same_place(a: Cluster, b: Cluster, similarity: float) -> bool:
    return cosine_coefficient(a.representative, b.representative) >= similarity


def _overlap_ms(a: Cluster, b: Cluster) -> float:
    return min(a.exit_ms, b.exit_ms) - max(a.entry_ms, b.entry_ms)


def match_clusters(
    truth: Sequence[Cluster],
    collected: Sequence[Cluster],
    boundary_tolerance_ms: float = DEFAULT_BOUNDARY_TOLERANCE_MS,
    representative_similarity: float = DEFAULT_REPRESENTATIVE_SIMILARITY,
) -> MatchReport:
    """Greedily match each ground-truth cluster to collected clusters.

    Collected clusters are consumed at most once (the deployment's
    collector never reported a dwell twice thanks to the end-to-end
    dedup, and neither does ours).
    """
    report = MatchReport()
    available = list(collected)
    for truth_cluster in sorted(truth, key=lambda c: c.entry_ms):
        best = None
        best_overlap = 0.0
        for candidate in available:
            if not _same_place(truth_cluster, candidate, representative_similarity):
                continue
            overlap = _overlap_ms(truth_cluster, candidate)
            if overlap > best_overlap:
                best_overlap = overlap
                best = candidate
        if best is None or best_overlap <= 0:
            report.results.append(MatchResult(truth_cluster, None, MATCH_MISSING))
            continue
        available.remove(best)
        entry_delta = abs(truth_cluster.entry_ms - best.entry_ms)
        exit_delta = abs(truth_cluster.exit_ms - best.exit_ms)
        if entry_delta <= boundary_tolerance_ms and exit_delta <= boundary_tolerance_ms:
            kind = MATCH_EXACT
        else:
            kind = MATCH_PARTIAL
        report.results.append(MatchResult(truth_cluster, best, kind))
    return report


def data_reduction_percent(raw_bytes: int, reduced_bytes: int) -> float:
    """The headline number: "we reduced the total amount of data
    transferred by 98.3% by making use of on-line clustering"."""
    if raw_bytes <= 0:
        return 0.0
    return 100.0 * (1.0 - reduced_bytes / raw_bytes)
