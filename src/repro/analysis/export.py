"""CSV export: get simulation data out for external plotting/analysis.

The ASCII renderer (:mod:`repro.analysis.plotting`) covers quick looks;
users who want real figures (matplotlib, gnuplot, R) can dump any trace
or result table to CSV with these helpers.  No dependency beyond the
standard library.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence, TextIO, Union

from ..sim.trace import Interval, IntervalTrack, TimeSeries, TraceRecorder


def _writer(target: Union[str, TextIO, None]):
    """Return (file_object, should_close, buffer_or_none)."""
    if target is None:
        buffer = io.StringIO()
        return buffer, False, buffer
    if isinstance(target, str):
        handle = open(target, "w", newline="", encoding="utf-8")
        return handle, True, None
    return target, False, None


def write_text(target: Union[str, TextIO, None], text: str) -> Optional[str]:
    """The one write path every exporter shares.

    ``target`` may be a path (written atomically-enough: open, write,
    close), an open file, ``-`` / ``None`` for stdout.  Returns the text
    so callers can chain.  Centralising this keeps ``--output`` /
    ``--telemetry`` / ``--report`` flags behaving identically across
    subcommands.
    """
    import sys

    if target is None or target == "-":
        sys.stdout.write(text)
        if text and not text.endswith("\n"):
            sys.stdout.write("\n")
        return text
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text
    target.write(text)
    return text


def series_to_csv(series: TimeSeries, target: Union[str, TextIO, None] = None) -> Optional[str]:
    """Write a (time, value) series as ``time_ms,value`` rows.

    ``target`` may be a path, an open file, or ``None`` to get the CSV
    back as a string.
    """
    handle, close, buffer = _writer(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(["time_ms", series.name or "value"])
        for time_ms, value in series:
            writer.writerow([f"{time_ms:.3f}", repr(value)])
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None


def intervals_to_csv(
    tracks: Sequence[IntervalTrack],
    target: Union[str, TextIO, None] = None,
    until: Optional[float] = None,
) -> Optional[str]:
    """Write activity tracks as ``track,start_ms,end_ms,label`` rows."""
    handle, close, buffer = _writer(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(["track", "start_ms", "end_ms", "label"])
        for track in tracks:
            for interval in track.closed_intervals(until):
                writer.writerow(
                    [track.name, f"{interval.start:.3f}", f"{interval.end:.3f}", interval.label]
                )
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None


def trace_to_csv(trace: TraceRecorder, target: Union[str, TextIO, None] = None) -> Optional[str]:
    """Write a trace log as ``time_ms,source,kind,data`` rows."""
    import json

    handle, close, buffer = _writer(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(["time_ms", "source", "kind", "data"])
        for event in trace:
            writer.writerow(
                [f"{event.time:.3f}", event.source, event.kind, json.dumps(event.data, sort_keys=True)]
            )
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None


def spans_to_csv(spans: Iterable, target: Union[str, TextIO, None] = None) -> Optional[str]:
    """Write lifecycle spans as flat CSV rows (attrs as sorted JSON)."""
    import json

    handle, close, buffer = _writer(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(["span", "trace", "parent", "hop", "start_ms", "end_ms", "attrs"])
        for span in spans:
            writer.writerow(
                [
                    span.span_id,
                    span.trace_id,
                    span.parent_id,
                    span.hop,
                    f"{span.start_ms:.3f}",
                    f"{span.end_ms:.3f}",
                    json.dumps(dict(span.attrs or {}), sort_keys=True),
                ]
            )
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None


def spans_to_jsonl(spans: Iterable, target: Union[str, TextIO, None] = None) -> Optional[str]:
    """Write lifecycle spans as JSON Lines, one span per line.

    The line format is deterministic (sorted keys, compact separators),
    so two identical seeded runs export byte-identical files — CI pins
    this property.
    """
    from ..sim.spans import spans_to_jsonl_lines

    handle, close, buffer = _writer(target)
    try:
        for line in spans_to_jsonl_lines(spans):
            handle.write(line)
            handle.write("\n")
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None


def spans_from_jsonl(source: Union[str, TextIO]) -> List:
    """Read spans back from a JSON Lines export (round-trip of
    :func:`spans_to_jsonl`).  ``source`` is a path or an open file."""
    import json

    from ..sim.spans import Span

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = source.read().splitlines()
    return [Span.from_dict(json.loads(line)) for line in lines if line.strip()]


def rows_to_csv(
    header: Sequence[str],
    rows: Iterable[Sequence],
    target: Union[str, TextIO, None] = None,
) -> Optional[str]:
    """Generic table export (benchmark results, Table 4 rows, ...)."""
    handle, close, buffer = _writer(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))
    finally:
        if close:
            handle.close()
    return buffer.getvalue() if buffer is not None else None
