"""Source-lines-of-code counting for Table 2.

"Table 2 shows the source lines of code count for the application.
Empty lines and comments are not counted."  The paper counted JavaScript;
our scripts are Python, so the counter handles both comment styles (and
simple block comments/docstrings) so the JS listings from the paper can
be counted too for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class SlocCount:
    """Line counts for one source text."""

    sloc: int
    blank: int
    comment: int
    total: int
    size_bytes: int


def count_sloc(source: str, language: str = "python") -> SlocCount:
    """Count non-blank, non-comment source lines.

    ``language`` selects the comment syntax: ``python`` (``#`` and
    triple-quoted strings used as docstrings) or ``javascript`` (``//``
    and ``/* ... */``).
    """
    if language not in ("python", "javascript"):
        raise ValueError(f"unsupported language: {language!r}")
    lines = source.splitlines()
    blank = comment = sloc = 0
    in_block = False  # /* */ or ''' ''' state
    block_delim = ""
    for raw_line in lines:
        line = raw_line.strip()
        if in_block:
            comment += 1
            if block_delim in line:
                in_block = False
            continue
        if not line:
            blank += 1
            continue
        if language == "python":
            if line.startswith("#"):
                comment += 1
                continue
            if line.startswith(('"""', "'''")):
                delim = line[:3]
                comment += 1
                # Single-line docstring?
                if not (line.endswith(delim) and len(line) >= 6):
                    in_block = True
                    block_delim = delim
                continue
        else:
            if line.startswith("//"):
                comment += 1
                continue
            if line.startswith("/*"):
                comment += 1
                if "*/" not in line[2:]:
                    in_block = True
                    block_delim = "*/"
                continue
        sloc += 1
    return SlocCount(
        sloc=sloc,
        blank=blank,
        comment=comment,
        total=len(lines),
        size_bytes=len(source.encode("utf-8")),
    )


def count_scripts(scripts: Dict[str, str], language: str = "python") -> List[Tuple[str, SlocCount]]:
    """Count a set of named scripts, plus a total row (like Table 2)."""
    rows = [(name, count_sloc(source, language)) for name, source in sorted(scripts.items())]
    total = SlocCount(
        sloc=sum(c.sloc for _, c in rows),
        blank=sum(c.blank for _, c in rows),
        comment=sum(c.comment for _, c in rows),
        total=sum(c.total for _, c in rows),
        size_bytes=sum(c.size_bytes for _, c in rows),
    )
    rows.append(("total", total))
    return rows
