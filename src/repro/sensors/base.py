"""Sensor base class: demand-driven activation and rate selection.

Section 4.3: "Given the battery constraints of mobile devices it would be
wasteful to have sensors draw power when their output is not being
consumed.  The framework therefore allows sensors to listen for changes
in subscriptions to the channels they publish on.  Sensors can enable or
disable scanning based on this information, and change their behavior
depending on the subscription parameters."

And the coordination example from Section 3.5: when two scripts request
Wi-Fi scans at different rates, "it would be sufficient to scan at the
highest of the two frequencies to serve both scripts" — so the effective
interval is the *minimum* requested interval across all subscriptions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim.kernel import MINUTE


class Sensor:
    """Base class for device sensors.

    Subclasses set :attr:`channel` and :attr:`default_interval_ms` and
    implement :meth:`sample` (one reading) plus optionally
    :meth:`on_enabled` / :meth:`on_disabled` for power bookkeeping.
    """

    channel: str = ""
    default_interval_ms: float = 1 * MINUTE

    def __init__(self, phone) -> None:
        self.phone = phone
        self.manager = None
        self.enabled = False
        self.interval_ms = self.default_interval_ms
        self.sample_count = 0
        self.publish_count = 0
        self._task = None

    # ------------------------------------------------------------------
    def attach(self, manager) -> None:
        self.manager = manager

    @property
    def scheduler(self):
        return self.manager.node.scheduler

    # ------------------------------------------------------------------
    # Demand evaluation
    # ------------------------------------------------------------------
    def reevaluate(self) -> None:
        """Re-check demand for this sensor's channel and (re)configure."""
        if self.manager is None:
            return
        subscriptions = self.manager.subscriptions(self.channel)
        if not subscriptions:
            self.disable()
            return
        interval = self.effective_interval(subscriptions)
        if not self.enabled:
            self.interval_ms = interval
            self.enable()
        elif interval != self.interval_ms:
            self.interval_ms = interval
            self.retime()

    def effective_interval(self, subscriptions) -> float:
        """Highest requested rate wins (minimum interval)."""
        intervals = [
            float(s.parameter("interval", self.default_interval_ms))
            for s in subscriptions
        ]
        return max(min(intervals), 100.0)

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def enable(self) -> None:
        if self.enabled:
            return
        self.enabled = True
        self.on_enabled()
        self._task = self.scheduler.schedule_repeating(
            self.interval_ms, self._tick, initial_delay_ms=min(self.interval_ms, 1000.0)
        )

    def disable(self) -> None:
        if not self.enabled:
            return
        self.enabled = False
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self.on_disabled()

    def retime(self) -> None:
        """Apply a new sampling interval."""
        if self._task is not None:
            self._task.cancel()
        self._task = self.scheduler.schedule_repeating(self.interval_ms, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.enabled:
            return
        self.sample_count += 1
        self.sample()

    def publish(self, message: Dict[str, Any]) -> None:
        """Publish a reading into every context on the node."""
        if self.manager is None:
            return
        self.publish_count += 1
        message.setdefault("timestamp", self.phone.kernel.now)
        self.manager.publish(self.channel, message)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def sample(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_enabled(self) -> None:
        """Called when the sensor turns on (claim power, warm up)."""

    def on_disabled(self) -> None:
        """Called when the sensor turns off (release power)."""
