"""The battery sensor (publishes on ``battery``).

The Table 3 workload: "it was sampling the battery sensor every minute.
Because of the synchronization mechanism these values were reported in
batches of five whenever the e-mail application checked for updates."

Reading the battery is nearly free (a sysfs read on real Android); the
cost of this sensor is entirely the CPU wakeups its sampling alarm
causes, which is exactly the overhead Table 3 measures.
"""

from __future__ import annotations

from ..sim.kernel import MINUTE
from .base import Sensor


class BatterySensor(Sensor):
    """Publishes voltage / state-of-charge readings."""

    channel = "battery"
    default_interval_ms = 1 * MINUTE

    def sample(self) -> None:
        if not self.phone.alive:
            return
        self.publish(self.phone.battery.reading())
