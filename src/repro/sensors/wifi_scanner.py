"""The Wi-Fi scanning sensor (publishes on ``wifi-scan``).

The workhorse of the localization application: ``subscribe('wifi-scan',
handleScan, {interval: 60 * 1000})`` requests one scan per minute.  Each
scan holds a wake lock for its 1–2 second duration (Section 4.5's
motivating example: without the lock the completion callback would never
arrive), drives the Wi-Fi radio's scan power state, and publishes::

    {"timestamp": <ms>, "aps": [{"bssid": ..., "ssid": ..., "rssi": <dBm>}, ...]}

The actual readings come from the world model via
``phone.wifi.scan_source``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..sim.kernel import MINUTE
from .base import Sensor

WAKE_LOCK_TAG = "wifi-scan"


class WifiScanSensor(Sensor):
    """Scans for access points on demand."""

    channel = "wifi-scan"
    default_interval_ms = 1 * MINUTE

    def __init__(self, phone) -> None:
        super().__init__(phone)
        self.completed_scans = 0
        self.failed_scans = 0

    def sample(self) -> None:
        if not self.phone.alive:
            return
        self.phone.cpu.acquire_wake_lock(WAKE_LOCK_TAG)
        started = self.phone.wifi.scan(self._scan_done)
        if not started:
            self.failed_scans += 1
            self.phone.cpu.release_wake_lock(WAKE_LOCK_TAG)

    def _scan_done(self, readings: List[Any]) -> None:
        self.completed_scans += 1
        try:
            aps = [self._reading_to_dict(r) for r in readings]
            self.publish({"aps": aps})
        finally:
            self.phone.cpu.release_wake_lock(WAKE_LOCK_TAG)

    @staticmethod
    def _reading_to_dict(reading: Any) -> Dict[str, Any]:
        if isinstance(reading, dict):
            return reading
        return reading.to_message()
