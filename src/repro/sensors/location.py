"""The location sensor (publishes on ``locations``).

Section 4.3's parameterized-subscription example: "a script may request
location updates, but only from the GPS sensor.  It can do this by
subscribing to the locations channel using the ``provider: 'GPS'``
parameter."

Two providers are modelled:

* ``gps`` — accurate (≈5 m), slow to fix (several seconds holding a wake
  lock) and power-hungry while enabled;
* ``network`` — coarse (≈60 m) and cheap (cell/Wi-Fi lookup).

If any active subscription requests GPS, the GPS radio runs; otherwise
the cheap provider serves everyone — the same highest-common-demand rule
sensors apply to sampling intervals.
"""

from __future__ import annotations

from typing import Optional

from ..sim.kernel import MINUTE, SECOND
from ..world.geometry import Point, to_latlon
from .base import Sensor

PROVIDER_GPS = "gps"
PROVIDER_NETWORK = "network"

WAKE_LOCK_TAG = "location-fix"


class LocationSensor(Sensor):
    """Publishes position fixes from the world model."""

    channel = "locations"
    default_interval_ms = 2 * MINUTE

    #: Power draw of the GPS receiver while the sensor is enabled in GPS
    #: mode, and the time to acquire one fix.
    gps_power_w = 0.35
    gps_fix_ms = 6 * SECOND
    gps_accuracy_m = 5.0
    network_accuracy_m = 60.0

    def __init__(self, phone) -> None:
        super().__init__(phone)
        #: Installed by the harness: () -> Point with the user's position.
        self.position_source = None
        self.provider = PROVIDER_NETWORK
        self.fix_count = 0

    # ------------------------------------------------------------------
    def reevaluate(self) -> None:
        super().reevaluate()
        if self.manager is None or not self.enabled:
            return
        subscriptions = self.manager.subscriptions(self.channel)
        wanted = self._wanted_provider(subscriptions)
        if wanted != self.provider:
            self.provider = wanted
            self._apply_provider_power()

    @staticmethod
    def _wanted_provider(subscriptions) -> str:
        providers = {
            str(s.parameter("provider", PROVIDER_NETWORK)).lower()
            for s in subscriptions
        }
        return PROVIDER_GPS if PROVIDER_GPS in providers else PROVIDER_NETWORK

    def on_enabled(self) -> None:
        self._apply_provider_power()

    def on_disabled(self) -> None:
        self.phone.rail.set_draw("gps", 0.0)
        self.provider = PROVIDER_NETWORK

    def _apply_provider_power(self) -> None:
        draw = self.gps_power_w if self.provider == PROVIDER_GPS else 0.0
        self.phone.rail.set_draw("gps", draw)

    # ------------------------------------------------------------------
    def sample(self) -> None:
        if not self.phone.alive or self.position_source is None:
            return
        if self.provider == PROVIDER_GPS:
            self.phone.cpu.acquire_wake_lock(WAKE_LOCK_TAG)
            self.phone.kernel.schedule(self.gps_fix_ms, self._gps_fix_done)
        else:
            self._publish_fix(self.network_accuracy_m, PROVIDER_NETWORK)

    def _gps_fix_done(self) -> None:
        try:
            if self.enabled and self.phone.alive:
                self._publish_fix(self.gps_accuracy_m, PROVIDER_GPS)
        finally:
            self.phone.cpu.release_wake_lock(WAKE_LOCK_TAG)

    def _publish_fix(self, accuracy_m: float, provider: str) -> None:
        position: Optional[Point] = self.position_source()
        if position is None:
            return
        lat, lon = to_latlon(position)
        self.fix_count += 1
        self.publish(
            {
                "lat": round(lat, 6),
                "lon": round(lon, 6),
                "accuracy": accuracy_m,
                "provider": provider,
            }
        )
