"""The accelerometer sensor (publishes on ``accel``).

Context-aware middleware the paper compares against (Jigsaw, Mobicon)
ships accelerometer classifiers; Pogo instead exposes the raw windows and
lets scripts do their own processing.  The simulated signal is driven by
the user's current activity (still while dwelling, walking while
travelling), which is enough for an activity-detection example script to
produce meaningful output.

Messages carry summary features per sampling window::

    {"timestamp": ..., "mean": <g>, "std": <g>, "peak": <g>}
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..sim.kernel import SECOND
from .base import Sensor

ACTIVITY_STILL = "still"
ACTIVITY_WALKING = "walking"
ACTIVITY_VEHICLE = "vehicle"

#: (mean, std, peak) of acceleration magnitude in g per activity.
_PROFILES = {
    ACTIVITY_STILL: (1.00, 0.015, 1.05),
    ACTIVITY_WALKING: (1.05, 0.35, 2.2),
    ACTIVITY_VEHICLE: (1.02, 0.12, 1.5),
}


class AccelerometerSensor(Sensor):
    """Publishes per-window acceleration features."""

    channel = "accel"
    default_interval_ms = 5 * SECOND
    active_power_w = 0.015

    def __init__(self, phone, rng=None) -> None:
        super().__init__(phone)
        #: Installed by the harness: () -> one of the ACTIVITY_* strings.
        self.activity_source: Optional[Callable[[], str]] = None
        self._rng = rng

    def on_enabled(self) -> None:
        self.phone.rail.set_draw("accel", self.active_power_w)

    def on_disabled(self) -> None:
        self.phone.rail.set_draw("accel", 0.0)

    def sample(self) -> None:
        if not self.phone.alive:
            return
        activity = ACTIVITY_STILL
        if self.activity_source is not None:
            activity = self.activity_source()
        mean, std, peak = _PROFILES.get(activity, _PROFILES[ACTIVITY_STILL])
        jitter = self._rng.gauss(0.0, 0.01) if self._rng is not None else 0.0
        self.publish(
            {
                "mean": round(mean + jitter, 4),
                "std": round(max(0.0, std + jitter), 4),
                "peak": round(peak + 2 * jitter, 4),
            }
        )
