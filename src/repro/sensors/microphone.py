"""The microphone sensor (publishes on ``audio``).

Community sensing — the application class the paper's introduction cites
(Campbell et al.'s people-centric urban sensing, Krause et al.'s
community sensing) — classically means noise mapping: phones sample
ambient sound levels as their owners move through the city.

The sensor publishes A-weighted level summaries per sampling window::

    {"timestamp": ..., "db": <dBA>, "peak_db": <dBA>}

Levels come from the world model via :attr:`level_source` (ambient dBA at
the user's current context); the sensor adds microphone self-noise and
clips to a phone-microphone range.  Like every Pogo sensor it runs only
while subscribed — and it is the obvious candidate for a privacy block,
which the tests exercise.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.kernel import SECOND
from .base import Sensor

#: Plausible ambient levels by mobility/place context, dBA.
AMBIENT_DB = {
    "home": 42.0,
    "office": 55.0,
    "cafe": 65.0,
    "restaurant": 68.0,
    "gym": 70.0,
    "supermarket": 60.0,
    "friend": 50.0,
    "generic": 52.0,
    "foreign": 58.0,
    "street": 72.0,
}


def ambient_db_for(place_category: Optional[str]) -> float:
    """Ambient level for a place category (``None`` = travelling)."""
    if place_category is None:
        return AMBIENT_DB["street"]
    return AMBIENT_DB.get(place_category, AMBIENT_DB["generic"])


class MicrophoneSensor(Sensor):
    """Samples ambient sound pressure levels."""

    channel = "audio"
    default_interval_ms = 30 * SECOND
    active_power_w = 0.045
    #: Phone microphones bottom out around their self-noise floor and
    #: clip well below professional meters.
    floor_db = 30.0
    ceiling_db = 95.0

    def __init__(self, phone, rng=None) -> None:
        super().__init__(phone)
        #: Installed by the harness: () -> ambient dBA at the user's
        #: position (e.g. via :func:`ambient_db_for`).
        self.level_source: Optional[Callable[[], float]] = None
        self._rng = rng

    def on_enabled(self) -> None:
        self.phone.rail.set_draw("microphone", self.active_power_w)

    def on_disabled(self) -> None:
        self.phone.rail.set_draw("microphone", 0.0)

    def sample(self) -> None:
        if not self.phone.alive:
            return
        ambient = self.level_source() if self.level_source is not None else 40.0
        noise = self._rng.gauss(0.0, 2.5) if self._rng is not None else 0.0
        level = max(self.floor_db, min(self.ceiling_db, ambient + noise))
        peak = max(self.floor_db, min(self.ceiling_db, level + abs(noise) + 4.0))
        self.publish({"db": round(level, 1), "peak_db": round(peak, 1)})
