"""Device sensors: demand-driven, duty-cycled by subscription state."""

from .base import Sensor
from .accelerometer import (
    ACTIVITY_STILL,
    ACTIVITY_VEHICLE,
    ACTIVITY_WALKING,
    AccelerometerSensor,
)
from .battery_sensor import BatterySensor
from .location import PROVIDER_GPS, PROVIDER_NETWORK, LocationSensor
from .microphone import MicrophoneSensor, ambient_db_for
from .wifi_scanner import WifiScanSensor

__all__ = [
    "Sensor",
    "ACTIVITY_STILL",
    "ACTIVITY_VEHICLE",
    "ACTIVITY_WALKING",
    "AccelerometerSensor",
    "BatterySensor",
    "PROVIDER_GPS",
    "PROVIDER_NETWORK",
    "LocationSensor",
    "MicrophoneSensor",
    "ambient_db_for",
    "WifiScanSensor",
]
